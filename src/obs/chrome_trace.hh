/**
 * @file
 * Chrome-trace / Perfetto JSON export. Two documents per traced run:
 *
 *  - sim-time trace: pid 1, one tid per interned lane. Wire-flight
 *    slices ("X") per flit, async begin/end ("b"/"e") per PTW walk so
 *    overlapping walks render, instants ("i") for controller decisions
 *    and higher-level packet stages. Derived purely from the canonical
 *    merged record stream, so it is byte-identical across shard counts.
 *  - host-time trace: pid 2, one tid per shard, an "X" slice per
 *    conservative quantum with the window and barrier stall ticks as
 *    args, plus a stall counter track. Scheduler-job lanes go on pid 3
 *    (written by the sweep tool). Host time is wall-clock and therefore
 *    never compared byte-for-byte.
 *
 * Timebase: 1 core cycle = 1 ns (Table 2), so sim ts_us = tick / 1000.
 * Load either file in chrome://tracing or https://ui.perfetto.dev.
 */

#ifndef NETCRAFTER_OBS_CHROME_TRACE_HH
#define NETCRAFTER_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/trace.hh"

namespace netcrafter::sim {
class ShardedEngine;
} // namespace netcrafter::sim

namespace netcrafter::obs {

/** Process ids used across the emitted documents. */
inline constexpr int kSimPid = 1;
inline constexpr int kHostPid = 2;
inline constexpr int kSchedulerPid = 3;

/** JSON string escaping (mirrors exp::jsonEscape; obs sits below exp). */
std::string jsonEscape(const std::string &s);

/**
 * Accumulates Chrome-trace events and writes one {"traceEvents": [...]}
 * document. write() stable-sorts by (pid, tid, ts) with metadata first,
 * which both chrome://tracing and the repo's validator expect.
 */
class ChromeTraceWriter
{
  public:
    /** Name a process ("process_name") or thread ("thread_name"). */
    void processName(int pid, const std::string &name);
    void threadName(int pid, int tid, const std::string &name);

    /** A complete slice; @p args_json is a raw JSON object or empty. */
    void slice(int pid, int tid, const std::string &name, double ts_us,
               double dur_us, const std::string &args_json = "");

    /** One point on a counter track. */
    void counter(int pid, const std::string &track, double ts_us,
                 const std::string &series, double value);

    /** A zero-duration instant on a thread track. */
    void instant(int pid, int tid, const std::string &name, double ts_us);

    /** Async begin/end pair; @p id distinguishes overlapping spans. */
    void asyncBegin(int pid, const std::string &cat,
                    const std::string &name, std::uint64_t id,
                    double ts_us);
    void asyncEnd(int pid, const std::string &cat, const std::string &name,
                  std::uint64_t id, double ts_us);

    std::size_t events() const { return events_.size(); }

    void write(std::ostream &os) const;

  private:
    struct Event
    {
        int pid = 0;
        int tid = 0;
        double ts = 0;
        double dur = 0;
        char ph = 'X';
        std::string name;
        std::string cat;
        std::string argsJson;
        std::uint64_t id = 0;
        bool hasId = false;
    };

    std::vector<Event> events_;
};

/**
 * Render the merged sim-time stream as a Chrome trace. @p lane_names
 * comes from the TraceSink that produced @p records.
 */
void writeSimChromeTrace(const std::vector<TraceRecord> &records,
                         const std::vector<std::string> &lane_names,
                         std::ostream &os);

/**
 * Render the host-time lanes (per-shard quanta + barrier stalls) from
 * the engine's host timeline. Requires setHostTimelineEnabled(true)
 * before the run.
 */
void writeHostChromeTrace(const sim::ShardedEngine &engine,
                          std::ostream &os);

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_CHROME_TRACE_HH
