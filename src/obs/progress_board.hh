/**
 * @file
 * Lock-free live-progress publication: the ProgressBoard a ShardedEngine
 * exposes so a background sampler (obs::Telemetry) can observe a running
 * simulation without perturbing it.
 *
 * Design constraints, in priority order:
 *  - non-perturbing: every field is a relaxed atomic written by the
 *    executor/coordinator threads at window or round granularity (plus a
 *    1/4096-event publish inside Engine::runWindow for serial liveness),
 *    so a run with a sampler attached stays bit-identical to one
 *    without — the board is written unconditionally and the sampler
 *    only ever *reads*;
 *  - no include cycle: sim owns a board and obs samples it, so this
 *    header depends on sim/types.hh only.
 *
 * Everything here is host-side diagnostics. Nothing read from a board
 * may ever feed back into simulation state.
 */

#ifndef NETCRAFTER_OBS_PROGRESS_BOARD_HH
#define NETCRAFTER_OBS_PROGRESS_BOARD_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "src/sim/types.hh"

namespace netcrafter::obs {

/**
 * Execution phases the host-time self-profiler attributes wall time
 * to. Coordinator work (decide()) is lumped into BarrierWait: it runs
 * on whichever thread arrived last, while every other thread is parked.
 */
enum class Phase : unsigned
{
    Execute = 0,  ///< inside Engine::runWindow, dispatching events
    BarrierWait,  ///< parked on the doorbell / coordinating the round
    Ingress,      ///< draining sealed cross-shard mailboxes
    StealScan,    ///< walking the claim words and the steal ledger
    Export,       ///< post-run artifact export (harness-attributed)
};

/** Number of Phase values (for tables indexed by phase). */
inline constexpr unsigned kPhaseCount = 5;

/** Stable lower-snake name for a phase ("barrier_wait", ...). */
inline const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Execute: return "execute";
      case Phase::BarrierWait: return "barrier_wait";
      case Phase::Ingress: return "ingress";
      case Phase::StealScan: return "steal_scan";
      case Phase::Export: return "export";
    }
    return "(invalid)";
}

/**
 * One shard's progress cell, padded to its own cache line so the
 * publishing executor never false-shares with a neighbour. tick/
 * events/backlog are (re)published by the shard's executor after every
 * window and by the shard Engine itself every 4096 events mid-window;
 * nextTick only at the barrier. serveInflight and flowLanesActive are
 * gauges bumped by the serve/flow subsystems from inside the shard's
 * event context (exactly one thread at a time, per the claim protocol).
 */
struct alignas(64) ShardCell
{
    std::atomic<std::uint64_t> tick{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> backlog{0};
    std::atomic<std::uint64_t> nextTick{kTickNever};
    std::atomic<std::uint64_t> serveInflight{0};
    std::atomic<std::uint64_t> flowLanesActive{0};
};

/**
 * The whole board: per-shard cells, round-granularity global counters
 * (coordinator-published), and per-thread×phase host-nanosecond
 * accumulators. Owned by the ShardedEngine; init() is called exactly
 * once from its constructor.
 */
class ProgressBoard
{
  public:
    ProgressBoard() = default;

    ProgressBoard(const ProgressBoard &) = delete;
    ProgressBoard &operator=(const ProgressBoard &) = delete;

    void
    init(unsigned shards, unsigned threads)
    {
        shards_ = shards;
        threads_ = threads;
        cells_ = std::make_unique<ShardCell[]>(shards);
        phaseNs_ = std::make_unique<PhaseRow[]>(threads);
    }

    unsigned shards() const { return shards_; }
    unsigned threads() const { return threads_; }

    ShardCell &cell(unsigned s) { return cells_[s]; }
    const ShardCell &cell(unsigned s) const { return cells_[s]; }

    /** Attribute @p ns of thread @p t's wall time to phase @p p. */
    void
    addPhaseNanos(unsigned t, Phase p, std::uint64_t ns)
    {
        phaseNs_[t].ns[static_cast<unsigned>(p)].fetch_add(
            ns, std::memory_order_relaxed);
    }

    /** Nanoseconds attributed to @p p, summed over all threads. */
    std::uint64_t
    phaseNanos(Phase p) const
    {
        std::uint64_t sum = 0;
        for (unsigned t = 0; t < threads_; ++t)
            sum += phaseNs_[t].ns[static_cast<unsigned>(p)].load(
                std::memory_order_relaxed);
        return sum;
    }

    /** Seconds attributed to @p p, summed over all threads. */
    double
    phaseSeconds(Phase p) const
    {
        return static_cast<double>(phaseNanos(p)) * 1e-9;
    }

    /** Events executed, summed over the shard cells. */
    std::uint64_t
    totalEvents() const
    {
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < shards_; ++s)
            sum += cells_[s].events.load(std::memory_order_relaxed);
        return sum;
    }

    /** Pending events, summed over the shard cells. */
    std::uint64_t
    totalBacklog() const
    {
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < shards_; ++s)
            sum += cells_[s].backlog.load(std::memory_order_relaxed);
        return sum;
    }

    /** Inflight served requests, summed over the shard cells. */
    std::uint64_t
    totalServeInflight() const
    {
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < shards_; ++s)
            sum += cells_[s].serveInflight.load(std::memory_order_relaxed);
        return sum;
    }

    /** Active flow-fidelity lanes, summed over the shard cells. */
    std::uint64_t
    totalFlowLanesActive() const
    {
        std::uint64_t sum = 0;
        for (unsigned s = 0; s < shards_; ++s)
            sum +=
                cells_[s].flowLanesActive.load(std::memory_order_relaxed);
        return sum;
    }

    // Round-granularity global state, published by the coordinator at
    // each decide() with exclusive access (plain relaxed stores).
    std::atomic<std::uint64_t> round{0};
    std::atomic<std::uint64_t> windowStart{0};
    std::atomic<std::uint64_t> windowEnd{kTickNever};
    std::atomic<std::uint64_t> quanta{0};
    std::atomic<std::uint64_t> stallTicks{0};
    std::atomic<std::uint64_t> stealsWon{0};
    std::atomic<std::uint64_t> idleParks{0};
    std::atomic<std::uint64_t> maxSkew{0};

  private:
    struct alignas(64) PhaseRow
    {
        std::array<std::atomic<std::uint64_t>, kPhaseCount> ns{};
    };

    unsigned shards_ = 0;
    unsigned threads_ = 0;
    std::unique_ptr<ShardCell[]> cells_;
    std::unique_ptr<PhaseRow[]> phaseNs_;
};

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_PROGRESS_BOARD_HH
