/**
 * @file
 * Per-shard trace buffers, the shared TraceSink that owns them, and the
 * inline tracepoint() helper components call on the hot path.
 *
 * Threading model: each shard's Engine carries a raw pointer to its own
 * TraceBuffer, so appends never synchronize. Lane names are interned in
 * component constructors — construction happens single-threaded on the
 * caller thread in the same order for every shard count, which makes
 * lane ids deterministic. merged() concatenates the per-shard streams
 * and sorts by the record's total order, recovering one canonical
 * stream regardless of how the work was sharded.
 */

#ifndef NETCRAFTER_OBS_TRACE_BUFFER_HH
#define NETCRAFTER_OBS_TRACE_BUFFER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/trace.hh"
#include "src/sim/engine.hh"

namespace netcrafter::obs {

/**
 * One shard's append-only record stream. Not thread-safe by design:
 * exactly one shard thread appends to it.
 */
class TraceBuffer
{
  public:
    TraceBuffer(TraceLevel level, std::size_t cap)
        : level_(level), cap_(cap)
    {}

    TraceLevel level() const { return level_; }

    /** Does this buffer record events at @p min_level? */
    bool wants(TraceLevel min_level) const { return level_ >= min_level; }

    void
    append(const TraceRecord &rec)
    {
        if (records_.size() >= cap_) {
            noteDrop();
            return;
        }
        records_.push_back(rec);
    }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::uint64_t dropped() const { return dropped_; }
    void clear();

  private:
    void noteDrop(); // out of line: keeps the overflow path off append()

    TraceLevel level_;
    std::size_t cap_;
    std::vector<TraceRecord> records_;
    std::uint64_t dropped_ = 0;
};

/**
 * Shared trace state for one MultiGpuSystem: the per-shard buffers and
 * the interned lane-name table. Owned by the system, outlives every
 * component that caches a lane id.
 */
class TraceSink
{
  public:
    TraceSink(const TraceOptions &opts, unsigned shards);

    const TraceOptions &options() const { return opts_; }
    unsigned shards() const { return static_cast<unsigned>(buffers_.size()); }
    TraceBuffer &buffer(unsigned shard) { return *buffers_.at(shard); }

    /**
     * Intern @p name, returning its stable lane id. Must only be called
     * during single-threaded construction; lane 0 is reserved for
     * "(unknown)".
     */
    std::uint16_t internLane(const std::string &name);

    /** Lane names indexed by lane id. */
    const std::vector<std::string> &laneNames() const { return laneNames_; }

    /**
     * All shards' records merged into the canonical total order
     * (ascending over every TraceRecord field, tick first).
     */
    std::vector<TraceRecord> merged() const;

    std::uint64_t totalRecords() const;
    std::uint64_t totalDropped() const;

  private:
    TraceOptions opts_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    std::vector<std::string> laneNames_;
    std::unordered_map<std::string, std::uint16_t> laneIds_;
};

/**
 * Intern @p name against the sink attached to @p engine. Returns 0 when
 * tracing is disabled, which is the reserved "(unknown)" lane — callers
 * cache the result unconditionally.
 */
std::uint16_t internLane(sim::Engine &engine, const std::string &name);

/**
 * The tracepoint every instrumented component calls. Compiles to a
 * single null-check + level compare when tracing is off, and to nothing
 * at all under -DNETCRAFTER_DISABLE_TRACING.
 */
inline void
tracepoint(sim::Engine &engine, TraceLevel min_level, TraceKind kind,
           TraceStage stage, std::uint16_t lane, std::uint64_t id,
           std::uint32_t a = 0, std::uint32_t b = 0)
{
#if !defined(NETCRAFTER_DISABLE_TRACING)
    TraceBuffer *tb = engine.trace();
    if (tb == nullptr || !tb->wants(min_level))
        return;
    TraceRecord rec;
    rec.tick = engine.now();
    rec.id = id;
    rec.a = a;
    rec.b = b;
    rec.lane = lane;
    rec.kind = static_cast<std::uint8_t>(kind);
    rec.stage = static_cast<std::uint8_t>(stage);
    tb->append(rec);
#else
    (void)engine;
    (void)min_level;
    (void)kind;
    (void)stage;
    (void)lane;
    (void)id;
    (void)a;
    (void)b;
#endif
}

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_TRACE_BUFFER_HH
