/**
 * @file
 * Live run telemetry: a background host-time sampler that, at a
 * configurable wall interval, snapshots every registered run's
 * lock-free ProgressBoard and appends one NDJSON heartbeat record per
 * interval to a file, optionally paints a single-line TTY progress/ETA
 * display, and polls a hang-diagnosing Watchdog.
 *
 * Non-perturbation contract (mirrors the tracing layer's): the sampler
 * only ever *reads* relaxed atomics the simulation publishes anyway, so
 * a run with telemetry on is bit-identical (sameMeasurement, event
 * census) to one with it off. Registration costs one mutex acquisition
 * per run construction/destruction, never per event.
 *
 * Wire-up: `Telemetry::instance()` is process-global. The sweep CLI
 * starts it from flags; the harness starts it from the
 * NETCRAFTER_HEARTBEAT_* / NETCRAFTER_WATCHDOG_* environment
 * (ensureStartedFromEnv) so figure binaries and tests get heartbeats
 * without plumbing. MultiGpuSystem registers its engine's board for the
 * lifetime of the system; exp::Scheduler registers a SweepProgress for
 * the lifetime of a sweep.
 */

#ifndef NETCRAFTER_OBS_TELEMETRY_HH
#define NETCRAFTER_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/progress_board.hh"
#include "src/obs/watchdog.hh"

namespace netcrafter::obs {

/**
 * Sweep-level progress a Scheduler publishes for the heartbeat/ETA
 * display. Atomics because the scheduler's worker threads bump them
 * while the sampler reads.
 */
struct SweepProgress
{
    std::atomic<std::uint64_t> jobsDone{0};
    std::atomic<std::uint64_t> jobsTotal{0};
    std::atomic<std::uint64_t> cacheHits{0};
};

/** Configuration for the telemetry subsystem (flags or environment). */
struct TelemetryOptions
{
    /** NDJSON heartbeat file; empty emits no file. */
    std::string heartbeatPath;

    /** Wall milliseconds between heartbeats. */
    unsigned intervalMs = 500;

    /** Paint a single-line progress/ETA display on stderr. */
    bool tty = false;

    /** Watchdog no-progress threshold in host seconds; 0 disables. */
    double watchdogSecs = 0;

    /** Extra file the watchdog flight record is written to. */
    std::string watchdogDumpPath;

    /** std::abort() after the watchdog dump. */
    bool watchdogAbort = false;

    bool
    enabled() const
    {
        return !heartbeatPath.empty() || tty || watchdogSecs > 0;
    }

    /**
     * Options from NETCRAFTER_HEARTBEAT_{OUT,INTERVAL_MS,TTY} and
     * NETCRAFTER_WATCHDOG_{SECS,DUMP,ABORT}, parsed once and cached
     * (NC_FATAL on junk, same pattern as TraceOptions::fromEnv).
     */
    static const TelemetryOptions &fromEnv();
};

/** The process-wide sampler; see the file comment. */
class Telemetry
{
  public:
    static Telemetry &instance();

    /**
     * Start the sampler thread. No-op when already running (the first
     * configuration wins — a sweep's flags beat the harness's env
     * fallback because the CLI starts it first).
     */
    void start(const TelemetryOptions &opts);

    /**
     * Stop and join the sampler, emitting one final heartbeat first so
     * even a sub-interval run produces at least one record.
     */
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** start(fromEnv()) when the environment asks for telemetry. */
    void ensureStartedFromEnv();

    /**
     * Register a live run: @p board is sampled every interval, @p dump
     * (may be empty) contributes to the watchdog's flight record.
     * Returns immediately when the sampler is not running.
     */
    void registerRun(const ProgressBoard *board,
                     std::function<void(std::ostream &)> dump);
    void unregisterRun(const ProgressBoard *board);

    /** Register/unregister a sweep's progress counters. */
    void registerSweep(const SweepProgress *sweep);
    void unregisterSweep(const SweepProgress *sweep);

    /** Heartbeat records emitted since start() (tests, benches). */
    std::uint64_t heartbeats() const
    {
        return heartbeats_.load(std::memory_order_relaxed);
    }

    /** The active options (valid while running). */
    const TelemetryOptions &options() const { return opts_; }

    ~Telemetry();

  private:
    Telemetry() = default;

    struct Run
    {
        const ProgressBoard *board;
        std::function<void(std::ostream &)> dump;
    };

    void samplerMain();
    void emitHeartbeat(std::ostream *file, double host_seconds);
    void paintTty(double host_seconds);
    void dumpAll(std::ostream &os);
    std::uint64_t progressCounter();

    TelemetryOptions opts_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> heartbeats_{0};

    std::mutex mu_;              // registry + lifecycle
    std::condition_variable cv_; // wakes the sampler for stop()
    bool stopRequested_ = false;
    std::vector<Run> runs_;
    std::vector<const SweepProgress *> sweeps_;
    std::thread sampler_;
    std::unique_ptr<Watchdog> watchdog_;
    std::chrono::steady_clock::time_point epoch_;

    std::uint64_t lastEvents_ = 0; // TTY rate estimate
    double lastTtyTime_ = 0;
};

/**
 * Should a newly built system arm host-time self-profiling? True when
 * telemetry is running, when @p tracing_enabled (the Chrome host trace
 * gains phase counter tracks), or when NETCRAFTER_PROFILE is truthy.
 */
bool profilingArmed(bool tracing_enabled);

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_TELEMETRY_HH
