#include "src/obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

#include "src/sim/sharded_engine.hh"

namespace netcrafter::obs {

namespace {

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
}

/** Sim ticks (1 cycle = 1 ns) to Chrome-trace microseconds. */
double
tickToUs(Tick tick)
{
    return static_cast<double>(tick) / 1000.0;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
ChromeTraceWriter::processName(int pid, const std::string &name)
{
    Event ev;
    ev.pid = pid;
    ev.ph = 'M';
    ev.name = "process_name";
    ev.argsJson = "{\"name\": \"" + jsonEscape(name) + "\"}";
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::threadName(int pid, int tid, const std::string &name)
{
    Event ev;
    ev.pid = pid;
    ev.tid = tid;
    ev.ph = 'M';
    ev.name = "thread_name";
    ev.argsJson = "{\"name\": \"" + jsonEscape(name) + "\"}";
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::slice(int pid, int tid, const std::string &name,
                         double ts_us, double dur_us,
                         const std::string &args_json)
{
    Event ev;
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts_us;
    ev.dur = dur_us;
    ev.ph = 'X';
    ev.name = name;
    ev.argsJson = args_json;
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::counter(int pid, const std::string &track, double ts_us,
                           const std::string &series, double value)
{
    Event ev;
    ev.pid = pid;
    ev.ts = ts_us;
    ev.ph = 'C';
    ev.name = track;
    ev.argsJson =
        "{\"" + jsonEscape(series) + "\": " + num(value) + "}";
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::instant(int pid, int tid, const std::string &name,
                           double ts_us)
{
    Event ev;
    ev.pid = pid;
    ev.tid = tid;
    ev.ts = ts_us;
    ev.ph = 'i';
    ev.name = name;
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::asyncBegin(int pid, const std::string &cat,
                              const std::string &name, std::uint64_t id,
                              double ts_us)
{
    Event ev;
    ev.pid = pid;
    ev.ts = ts_us;
    ev.ph = 'b';
    ev.name = name;
    ev.cat = cat;
    ev.id = id;
    ev.hasId = true;
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::asyncEnd(int pid, const std::string &cat,
                            const std::string &name, std::uint64_t id,
                            double ts_us)
{
    Event ev;
    ev.pid = pid;
    ev.ts = ts_us;
    ev.ph = 'e';
    ev.name = name;
    ev.cat = cat;
    ev.id = id;
    ev.hasId = true;
    events_.push_back(std::move(ev));
}

void
ChromeTraceWriter::write(std::ostream &os) const
{
    std::vector<const Event *> order;
    order.reserve(events_.size());
    for (const Event &ev : events_)
        order.push_back(&ev);
    // Metadata first, then (pid, tid, ts): the validator checks each
    // lane's timestamps are non-decreasing in document order.
    std::stable_sort(order.begin(), order.end(),
                     [](const Event *a, const Event *b) {
                         const bool ma = a->ph == 'M';
                         const bool mb = b->ph == 'M';
                         return std::make_tuple(!ma, a->pid, a->tid,
                                                a->ts) <
                                std::make_tuple(!mb, b->pid, b->tid,
                                                b->ts);
                     });

    os << "{\"traceEvents\": [";
    bool first = true;
    for (const Event *ev : order) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"ph\": \"" << ev->ph << "\", \"pid\": " << ev->pid;
        if (ev->ph != 'C' && !(ev->ph == 'b' || ev->ph == 'e'))
            os << ", \"tid\": " << ev->tid;
        os << ", \"name\": \"" << jsonEscape(ev->name) << "\"";
        if (!ev->cat.empty())
            os << ", \"cat\": \"" << jsonEscape(ev->cat) << "\"";
        if (ev->hasId)
            os << ", \"id\": " << ev->id;
        if (ev->ph != 'M')
            os << ", \"ts\": " << num(ev->ts);
        if (ev->ph == 'X')
            os << ", \"dur\": " << num(ev->dur);
        if (ev->ph == 'i')
            os << ", \"s\": \"t\"";
        if (!ev->argsJson.empty())
            os << ", \"args\": " << ev->argsJson;
        os << "}";
    }
    os << "\n]}\n";
}

void
writeSimChromeTrace(const std::vector<TraceRecord> &records,
                    const std::vector<std::string> &lane_names,
                    std::ostream &os)
{
    ChromeTraceWriter writer;
    writer.processName(kSimPid, "sim-time");

    std::vector<bool> lane_named(lane_names.size(), false);
    auto nameLane = [&](std::uint16_t lane) {
        if (lane < lane_names.size() && !lane_named[lane]) {
            lane_named[lane] = true;
            writer.threadName(kSimPid, lane, lane_names[lane]);
        }
    };

    std::map<std::tuple<std::uint16_t, std::uint64_t, std::uint32_t>,
             TraceRecord>
        wire_departs;
    for (const TraceRecord &rec : records) {
        nameLane(rec.lane);
        const auto stage = static_cast<TraceStage>(rec.stage);
        switch (stage) {
          case TraceStage::WireDepart:
            wire_departs[{rec.lane, rec.id, rec.b & 0xffffu}] = rec;
            break;
          case TraceStage::WireArrive: {
            const auto it =
                wire_departs.find({rec.lane, rec.id, rec.b & 0xffffu});
            if (it == wire_departs.end())
                break;
            const TraceRecord &dep = it->second;
            std::ostringstream args;
            args << "{\"pkt\": " << dep.id
                 << ", \"seq\": " << (dep.b & 0xffffu)
                 << ", \"usedBytes\": " << (dep.a & 0xffffu)
                 << ", \"capacity\": " << (dep.a >> 16)
                 << ", \"stitchedPieces\": " << (dep.b >> 16) << "}";
            writer.slice(kSimPid, dep.lane, "flit", tickToUs(dep.tick),
                         tickToUs(rec.tick - dep.tick), args.str());
            wire_departs.erase(it);
            break;
          }
          case TraceStage::WalkStart:
            writer.asyncBegin(
                kSimPid, "ptw", "walk",
                (static_cast<std::uint64_t>(rec.lane) << 48) ^ rec.id,
                tickToUs(rec.tick));
            break;
          case TraceStage::WalkEnd:
            writer.asyncEnd(
                kSimPid, "ptw", "walk",
                (static_cast<std::uint64_t>(rec.lane) << 48) ^ rec.id,
                tickToUs(rec.tick));
            break;
          default:
            writer.instant(kSimPid, rec.lane, traceStageName(stage),
                           tickToUs(rec.tick));
            break;
        }
    }
    writer.write(os);
}

void
writeHostChromeTrace(const sim::ShardedEngine &engine, std::ostream &os)
{
    ChromeTraceWriter writer;
    writer.processName(kHostPid, "host-time");
    for (unsigned s = 0; s < engine.numShards(); ++s) {
        writer.threadName(kHostPid, static_cast<int>(s),
                          "shard" + std::to_string(s));
        for (const sim::QuantumSpan &span : engine.hostSpans(s)) {
            // Adaptive quanta vary per round; the width lands both in
            // the slice args and on its own counter track so the
            // window-size trajectory is graphable next to the stalls.
            // (Unbounded drain-ahead windows were clamped to the
            // shard's final tick when the span was recorded.)
            const auto width = span.windowEnd - span.windowStart + 1;
            std::ostringstream args;
            args << "{\"window_start\": " << span.windowStart
                 << ", \"window_end\": " << span.windowEnd
                 << ", \"window_ticks\": " << width
                 << ", \"stall_ticks\": " << span.stallTicks
                 << ", \"executor\": " << span.executor
                 << ", \"stolen\": " << (span.stolen ? "true" : "false")
                 << ", \"covered\": " << (span.covered ? "true" : "false")
                 << "}";
            writer.slice(kHostPid, static_cast<int>(s),
                         span.stolen ? "quantum (stolen)" : "quantum",
                         span.hostBegin * 1e6,
                         (span.hostEnd - span.hostBegin) * 1e6,
                         args.str());
            writer.counter(kHostPid, "barrier_stall_ticks",
                           span.hostEnd * 1e6,
                           "shard" + std::to_string(s),
                           static_cast<double>(span.stallTicks));
            // A covered tail stall cost no idle host time — its
            // executor moved straight on to another unit — so only
            // uncovered stalls land on the residual track.
            writer.counter(kHostPid, "residual_stall_ticks",
                           span.hostEnd * 1e6,
                           "shard" + std::to_string(s),
                           span.covered
                               ? 0.0
                               : static_cast<double>(span.stallTicks));
            writer.counter(kHostPid, "adaptive_window_ticks",
                           span.hostEnd * 1e6,
                           "shard" + std::to_string(s),
                           static_cast<double>(width));
        }
    }
    // The coordinator's per-round log: unit count, threads woken, and
    // the published-backlog spread (donor/thief imbalance) on counter
    // tracks of their own.
    for (const sim::RoundRecord &round : engine.roundLog()) {
        writer.counter(kHostPid, "round_units", round.hostTime * 1e6,
                       "units", static_cast<double>(round.units));
        writer.counter(kHostPid, "round_threads_woken",
                       round.hostTime * 1e6, "threads",
                       static_cast<double>(round.threadsWoken));
        writer.counter(kHostPid, "round_load_spread",
                       round.hostTime * 1e6, "events",
                       static_cast<double>(round.loadSpread));
        // Relaxed-sync runs get a skew track; strict traces stay
        // byte-identical to the pre-relaxed format.
        if (engine.syncMode() == sim::SyncMode::Relaxed) {
            writer.counter(kHostPid, "round_observed_skew",
                           round.hostTime * 1e6, "ticks",
                           static_cast<double>(round.maxSkew));
        }
        // Host-time self-profiling: cumulative per-phase seconds at
        // each barrier round, one counter track per phase. All-zero
        // rounds (profiling unarmed) are skipped so untouched traces
        // stay byte-identical to the pre-profiling format.
        double phase_total = 0;
        for (double secs : round.phaseSeconds)
            phase_total += secs;
        if (phase_total > 0) {
            for (unsigned p = 0; p < obs::kPhaseCount; ++p) {
                writer.counter(
                    kHostPid,
                    std::string("host_phase_") +
                        phaseName(static_cast<Phase>(p)),
                    round.hostTime * 1e6, "seconds",
                    round.phaseSeconds[p]);
            }
        }
    }
    writer.write(os);
}

} // namespace netcrafter::obs
