/**
 * @file
 * Hang-diagnosing watchdog: detects "no simulation progress for N host
 * seconds" and dumps a flight-recorder snapshot before (optionally)
 * aborting, turning a silent hang into a bug report.
 *
 * The watchdog itself owns no thread — obs::Telemetry's sampler polls
 * it at every heartbeat interval. Clock, progress source, and dump sink
 * are all injected std::functions so tests can drive the trigger
 * deterministically with a fake host clock (no sleeps, no flakiness).
 */

#ifndef NETCRAFTER_OBS_WATCHDOG_HH
#define NETCRAFTER_OBS_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace netcrafter::obs {

/** Detects a stalled simulation and fires the flight recorder once. */
class Watchdog
{
  public:
    struct Options
    {
        /** Host seconds without forward progress before firing. */
        double noProgressSecs = 30.0;

        /** Extra file the flight record is written to (stderr always
         *  gets a copy); empty keeps it stderr-only. */
        std::string dumpPath;

        /** std::abort() after dumping, so a hung batch job dies with
         *  a diagnosable core instead of burning its walltime. */
        bool abortOnTrigger = false;
    };

    /** Monotonic host clock, in seconds. */
    using ClockFn = std::function<double()>;

    /** Monotone progress counter (e.g. total events executed). */
    using ProgressFn = std::function<std::uint64_t()>;

    /** Writes the flight-recorder snapshot to a stream. */
    using DumpFn = std::function<void(std::ostream &)>;

    Watchdog(Options opts, ClockFn clock, ProgressFn progress,
             DumpFn dump);

    /**
     * Sample progress against the clock. Returns true when this call
     * fired the trigger (at most once per Watchdog). A progress counter
     * of zero is treated as "not started yet" and never times out —
     * a process parked before its first event is idle, not hung.
     */
    bool poll();

    /** Has the no-progress trigger fired? */
    bool triggered() const { return triggered_; }

    /** Host seconds since the last observed progress change. */
    double idleSeconds() const { return idleSecs_; }

  private:
    void fire();

    Options opts_;
    ClockFn clock_;
    ProgressFn progress_;
    DumpFn dump_;

    std::uint64_t lastProgress_ = 0;
    double lastChange_ = 0;
    bool haveBaseline_ = false;
    double idleSecs_ = 0;
    bool triggered_ = false;
};

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_WATCHDOG_HH
