#include "src/obs/json_validate.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace netcrafter::obs {

namespace {

/** Recursive-descent parser over a string view of the document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (err_ != nullptr) {
            std::ostringstream os;
            os << what << " at offset " << pos_;
            *err_ = os.str();
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Type type,
            bool boolean)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out.type = type;
        out.boolean = boolean;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4)
                    return fail("bad \\u escape");
                pos_ += 4;
                // The repo's writers only escape control characters;
                // anything else is preserved as a replacement byte.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(text_[pos_]));
            ++pos_;
        }
        if (!digits)
            return fail("expected number");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        out.type = JsonValue::Type::Number;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': {
            out.type = JsonValue::Type::String;
            return parseString(out.text);
          }
          case 't': return literal("true", out, JsonValue::Type::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Type::Bool, false);
          case 'n': return literal("null", out, JsonValue::Type::Null, false);
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' in object");
            ++pos_;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

bool
validationError(std::string *err, std::size_t index,
                const std::string &what)
{
    if (err != nullptr) {
        std::ostringstream os;
        os << "traceEvents[" << index << "]: " << what;
        *err = os.str();
    }
    return false;
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *err)
{
    return Parser(text, err).parse(out);
}

bool
validateChromeTrace(const JsonValue &root, std::string *err,
                    ChromeTraceSummary *summary)
{
    ChromeTraceSummary local;
    if (!root.isObject()) {
        if (err != nullptr)
            *err = "top level is not an object";
        return false;
    }
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        if (err != nullptr)
            *err = "missing traceEvents array";
        return false;
    }

    std::map<std::pair<int, int>, double> last_ts; // (pid, tid) lanes
    std::map<int, bool> pids;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &ev = events->array[i];
        if (!ev.isObject())
            return validationError(err, i, "event is not an object");
        const JsonValue *ph = ev.find("ph");
        if (ph == nullptr || !ph->isString() || ph->text.size() != 1)
            return validationError(err, i, "missing one-character ph");
        const JsonValue *pid = ev.find("pid");
        if (pid == nullptr || !pid->isNumber())
            return validationError(err, i, "missing numeric pid");
        const JsonValue *name = ev.find("name");
        if (name == nullptr || !name->isString())
            return validationError(err, i, "missing name");
        pids[static_cast<int>(pid->number)] = true;

        const char kind = ph->text[0];
        ++local.events;
        if (kind == 'M') {
            ++local.metadata;
            continue;
        }
        const JsonValue *ts = ev.find("ts");
        if (ts == nullptr || !ts->isNumber())
            return validationError(err, i, "timed event missing ts");
        const JsonValue *tid = ev.find("tid");
        const int tid_value =
            tid != nullptr && tid->isNumber()
                ? static_cast<int>(tid->number)
                : 0;

        switch (kind) {
          case 'X': {
            const JsonValue *dur = ev.find("dur");
            if (dur == nullptr || !dur->isNumber())
                return validationError(err, i, "slice missing dur");
            ++local.slices;
            break;
          }
          case 'C': ++local.counters; break;
          case 'i': ++local.instants; break;
          case 'b':
          case 'e': ++local.asyncs; break;
          default:
            return validationError(err, i,
                                   std::string("unexpected ph '") + kind +
                                       "'");
        }

        // Per-lane monotonicity: slices and instants must appear in
        // non-decreasing ts order within their (pid, tid) lane.
        if (kind == 'X' || kind == 'i') {
            const auto lane = std::make_pair(
                static_cast<int>(pid->number), tid_value);
            const auto it = last_ts.find(lane);
            if (it != last_ts.end() && ts->number < it->second) {
                std::ostringstream os;
                os << "ts went backwards on lane (pid "
                   << lane.first << ", tid " << lane.second
                   << "): " << ts->number << " after " << it->second;
                return validationError(err, i, os.str());
            }
            last_ts[lane] = ts->number;
        }
    }
    local.lanes = last_ts.size();
    local.pids = pids.size();
    if (summary != nullptr)
        *summary = local;
    return true;
}

} // namespace netcrafter::obs
