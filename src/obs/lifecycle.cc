#include "src/obs/lifecycle.hh"

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/obs/chrome_trace.hh"

namespace netcrafter::obs {

namespace {

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
}

const std::vector<double> &
latencyBounds()
{
    static const std::vector<double> bounds = {64,   128,  256,  512,
                                               1024, 2048, 4096, 8192};
    return bounds;
}

} // namespace

void
foldLifecycle(const std::vector<TraceRecord> &records, stats::Registry &reg)
{
    stats::Distribution &wire_flight = reg.distribution(
        "obs.wireFlightCycles", latencyBounds());
    stats::Distribution &walk_cycles = reg.distribution(
        "obs.walkCycles", latencyBounds());
    stats::Distribution &round_trip = reg.distribution(
        "obs.requestRoundTripCycles", latencyBounds());
    stats::Distribution &rsp_flight = reg.distribution(
        "obs.responseFlightCycles", latencyBounds());
    stats::Distribution &serve_latency = reg.distribution(
        "obs.serveLatencyCycles", latencyBounds());

    // In-flight state keyed by shard-invariant fields only, so the fold
    // is identical whatever the shard count was.
    std::map<std::tuple<std::uint16_t, std::uint64_t, std::uint32_t>, Tick>
        wire_departs; // (lane, packet id, flit seq) -> depart tick
    std::map<std::pair<std::uint16_t, std::uint64_t>, std::deque<Tick>>
        walk_starts; // (lane, vpn) -> FIFO of start ticks
    std::map<std::uint64_t, Tick> injects; // packet id -> inject tick

    for (const TraceRecord &rec : records) {
        const auto stage = static_cast<TraceStage>(rec.stage);
        reg.counter(std::string("obs.stage.") + traceStageName(stage))
            .inc();
        switch (stage) {
          case TraceStage::WireDepart:
            wire_departs[{rec.lane, rec.id, rec.b & 0xffffu}] = rec.tick;
            break;
          case TraceStage::WireArrive: {
            const auto it =
                wire_departs.find({rec.lane, rec.id, rec.b & 0xffffu});
            if (it != wire_departs.end()) {
                wire_flight.sample(
                    static_cast<double>(rec.tick - it->second));
                wire_departs.erase(it);
            }
            break;
          }
          case TraceStage::WalkStart:
            walk_starts[{rec.lane, rec.id}].push_back(rec.tick);
            break;
          case TraceStage::WalkEnd: {
            const auto it = walk_starts.find({rec.lane, rec.id});
            if (it != walk_starts.end() && !it->second.empty()) {
                walk_cycles.sample(
                    static_cast<double>(rec.tick - it->second.front()));
                it->second.pop_front();
                if (it->second.empty())
                    walk_starts.erase(it);
            }
            break;
          }
          case TraceStage::RdmaInject:
            injects.emplace(rec.id, rec.tick);
            break;
          case TraceStage::Complete: {
            const auto it = injects.find(rec.id);
            if (it != injects.end()) {
                round_trip.sample(
                    static_cast<double>(rec.tick - it->second));
                injects.erase(it);
            }
            rsp_flight.sample(static_cast<double>(rec.a));
            break;
          }
          case TraceStage::ServeRetire:
            // The serving session stashes the request's end-to-end
            // latency (clamped to 32 bits) in `b`.
            serve_latency.sample(static_cast<double>(rec.b));
            break;
          default:
            break;
        }
    }
}

void
writeRegistryJson(const stats::Registry &reg, std::ostream &os)
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg.counters()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << c.value();
        first = false;
    }
    os << "\n  },\n  \"averages\": {";
    first = true;
    for (const auto &[name, a] : reg.averages()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"mean\": " << num(a.mean())
           << ", \"min\": " << num(a.min())
           << ", \"max\": " << num(a.max())
           << ", \"count\": " << a.count() << "}";
        first = false;
    }
    os << "\n  },\n  \"distributions\": {";
    first = true;
    for (const auto &[name, d] : reg.distributions()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"total\": " << d.total() << ", \"bounds\": [";
        for (std::size_t i = 0; i < d.bounds().size(); ++i)
            os << (i ? ", " : "") << num(d.bounds()[i]);
        os << "], \"counts\": [";
        for (std::size_t i = 0; i < d.bounds().size() + 1; ++i)
            os << (i ? ", " : "") << d.bucket(i);
        os << "]}";
        first = false;
    }
    os << "\n  }\n}\n";
}

} // namespace netcrafter::obs
