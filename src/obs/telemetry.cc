#include "src/obs/telemetry.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/sim/logging.hh"

namespace netcrafter::obs {

namespace {

unsigned
parseIntervalEnv(const char *text)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > 3'600'000) {
        NC_FATAL("NETCRAFTER_HEARTBEAT_INTERVAL_MS must be a wall "
                 "interval in [1, 3600000] ms, got '", text, "'");
    }
    return static_cast<unsigned>(v);
}

double
parseWatchdogSecsEnv(const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(v > 0)) {
        NC_FATAL("NETCRAFTER_WATCHDOG_SECS must be a positive host-"
                 "second threshold, got '", text, "'");
    }
    return v;
}

bool
parseBoolEnv(const char *name, const char *text)
{
    if (!std::strcmp(text, "1") || !std::strcmp(text, "on") ||
        !std::strcmp(text, "true"))
        return true;
    if (!std::strcmp(text, "0") || !std::strcmp(text, "off") ||
        !std::strcmp(text, "false"))
        return false;
    NC_FATAL(name, " must be one of 0/1/on/off/true/false, got '", text,
             "'");
}

/** -1 for the kTickNever sentinel, the tick itself otherwise. */
long long
tickOrNever(std::uint64_t tick)
{
    return tick == kTickNever ? -1 : static_cast<long long>(tick);
}

/** "1.23M" style human count for the TTY line. */
std::string
humanCount(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
}

} // namespace

const TelemetryOptions &
TelemetryOptions::fromEnv()
{
    static const TelemetryOptions opts = [] {
        TelemetryOptions o;
        if (const char *v = std::getenv("NETCRAFTER_HEARTBEAT_OUT"))
            o.heartbeatPath = v;
        if (const char *v = std::getenv("NETCRAFTER_HEARTBEAT_INTERVAL_MS"))
            o.intervalMs = parseIntervalEnv(v);
        if (const char *v = std::getenv("NETCRAFTER_HEARTBEAT_TTY"))
            o.tty = parseBoolEnv("NETCRAFTER_HEARTBEAT_TTY", v);
        if (const char *v = std::getenv("NETCRAFTER_WATCHDOG_SECS"))
            o.watchdogSecs = parseWatchdogSecsEnv(v);
        if (const char *v = std::getenv("NETCRAFTER_WATCHDOG_DUMP"))
            o.watchdogDumpPath = v;
        if (const char *v = std::getenv("NETCRAFTER_WATCHDOG_ABORT"))
            o.watchdogAbort = parseBoolEnv("NETCRAFTER_WATCHDOG_ABORT", v);
        return o;
    }();
    return opts;
}

Telemetry &
Telemetry::instance()
{
    static Telemetry telemetry;
    return telemetry;
}

Telemetry::~Telemetry()
{
    stop();
}

void
Telemetry::start(const TelemetryOptions &opts)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (running_.load(std::memory_order_acquire))
        return;
    if (!opts.enabled())
        return;
    opts_ = opts;
    stopRequested_ = false;
    heartbeats_.store(0, std::memory_order_relaxed);
    lastEvents_ = 0;
    lastTtyTime_ = 0;
    epoch_ = std::chrono::steady_clock::now();

    if (opts_.watchdogSecs > 0) {
        Watchdog::Options wopts;
        wopts.noProgressSecs = opts_.watchdogSecs;
        wopts.dumpPath = opts_.watchdogDumpPath;
        wopts.abortOnTrigger = opts_.watchdogAbort;
        watchdog_ = std::make_unique<Watchdog>(
            wopts,
            [this] {
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - epoch_)
                    .count();
            },
            [this] { return progressCounter(); },
            [this](std::ostream &os) { dumpAll(os); });
    }

    running_.store(true, std::memory_order_release);
    sampler_ = std::thread([this] { samplerMain(); });
}

void
Telemetry::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!running_.load(std::memory_order_acquire))
            return;
        stopRequested_ = true;
    }
    cv_.notify_all();
    sampler_.join();
    std::lock_guard<std::mutex> lk(mu_);
    running_.store(false, std::memory_order_release);
    watchdog_.reset();
}

void
Telemetry::ensureStartedFromEnv()
{
    if (running())
        return;
    const TelemetryOptions &opts = TelemetryOptions::fromEnv();
    if (opts.enabled())
        start(opts);
}

void
Telemetry::registerRun(const ProgressBoard *board,
                       std::function<void(std::ostream &)> dump)
{
    if (!running())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    runs_.push_back(Run{board, std::move(dump)});
}

void
Telemetry::unregisterRun(const ProgressBoard *board)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = runs_.begin(); it != runs_.end(); ++it) {
        if (it->board == board) {
            runs_.erase(it);
            return;
        }
    }
}

void
Telemetry::registerSweep(const SweepProgress *sweep)
{
    if (!running())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    sweeps_.push_back(sweep);
}

void
Telemetry::unregisterSweep(const SweepProgress *sweep)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = sweeps_.begin(); it != sweeps_.end(); ++it) {
        if (*it == sweep) {
            sweeps_.erase(it);
            return;
        }
    }
}

/** Monotone counter the watchdog watches: any event executed anywhere
 *  or any sweep job retired counts as forward progress. Caller holds
 *  mu_ (the watchdog only ever fires from the sampler thread). */
std::uint64_t
Telemetry::progressCounter()
{
    std::uint64_t sum = 0;
    for (const Run &run : runs_)
        sum += run.board->totalEvents();
    for (const SweepProgress *sweep : sweeps_)
        sum += sweep->jobsDone.load(std::memory_order_relaxed);
    return sum;
}

void
Telemetry::dumpAll(std::ostream &os)
{
    for (const Run &run : runs_)
        if (run.dump)
            run.dump(os);
}

void
Telemetry::samplerMain()
{
    std::ofstream file;
    std::ostream *out = nullptr;
    if (!opts_.heartbeatPath.empty()) {
        file.open(opts_.heartbeatPath, std::ios::trunc);
        if (!file) {
            NC_WARN("cannot open heartbeat file '", opts_.heartbeatPath,
                    "'; heartbeats disabled for this run");
        } else {
            out = &file;
        }
    }

    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        const bool stopping = cv_.wait_for(
            lk, std::chrono::milliseconds(opts_.intervalMs),
            [this] { return stopRequested_; });

        const double host_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        emitHeartbeat(out, host_seconds);
        if (opts_.tty)
            paintTty(host_seconds);
        if (watchdog_)
            watchdog_->poll();

        if (stopping) {
            if (opts_.tty)
                std::cerr << '\n';
            return;
        }
    }
}

/** One NDJSON record. Caller holds mu_; boards are read with relaxed
 *  atomic loads only. */
void
Telemetry::emitHeartbeat(std::ostream *file, double host_seconds)
{
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    if (file == nullptr)
        return;

    std::ostringstream os;
    os << "{\"seq\":" << heartbeats_.load(std::memory_order_relaxed)
       << ",\"host_seconds\":" << host_seconds;

    std::uint64_t events = 0, backlog = 0;
    os << ",\"runs\":[";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const ProgressBoard &b = *runs_[i].board;
        events += b.totalEvents();
        backlog += b.totalBacklog();
        if (i > 0)
            os << ',';
        os << "{\"round\":" << b.round.load(std::memory_order_relaxed)
           << ",\"window_start\":"
           << tickOrNever(b.windowStart.load(std::memory_order_relaxed))
           << ",\"window_end\":"
           << tickOrNever(b.windowEnd.load(std::memory_order_relaxed))
           << ",\"quanta\":" << b.quanta.load(std::memory_order_relaxed)
           << ",\"stall_ticks\":"
           << b.stallTicks.load(std::memory_order_relaxed)
           << ",\"steals_won\":"
           << b.stealsWon.load(std::memory_order_relaxed)
           << ",\"idle_parks\":"
           << b.idleParks.load(std::memory_order_relaxed)
           << ",\"max_skew\":"
           << b.maxSkew.load(std::memory_order_relaxed)
           << ",\"serve_inflight\":" << b.totalServeInflight()
           << ",\"flow_lanes_active\":" << b.totalFlowLanesActive()
           << ",\"shards\":[";
        for (unsigned s = 0; s < b.shards(); ++s) {
            const ShardCell &cell = b.cell(s);
            if (s > 0)
                os << ',';
            os << "{\"tick\":"
               << cell.tick.load(std::memory_order_relaxed)
               << ",\"events\":"
               << cell.events.load(std::memory_order_relaxed)
               << ",\"backlog\":"
               << cell.backlog.load(std::memory_order_relaxed)
               << ",\"next_tick\":"
               << tickOrNever(
                      cell.nextTick.load(std::memory_order_relaxed))
               << '}';
        }
        os << "]}";
    }
    os << "],\"events\":" << events << ",\"backlog\":" << backlog;

    os << ",\"phases\":{";
    for (unsigned p = 0; p < kPhaseCount; ++p) {
        double secs = 0;
        for (const Run &run : runs_)
            secs += run.board->phaseSeconds(static_cast<Phase>(p));
        if (p > 0)
            os << ',';
        os << '"' << phaseName(static_cast<Phase>(p)) << "\":" << secs;
    }
    os << '}';

    if (!sweeps_.empty()) {
        std::uint64_t done = 0, total = 0, hits = 0;
        for (const SweepProgress *sweep : sweeps_) {
            done += sweep->jobsDone.load(std::memory_order_relaxed);
            total += sweep->jobsTotal.load(std::memory_order_relaxed);
            hits += sweep->cacheHits.load(std::memory_order_relaxed);
        }
        const double eta =
            done > 0 && total >= done
                ? host_seconds * static_cast<double>(total - done) /
                      static_cast<double>(done)
                : -1.0;
        os << ",\"sweep\":{\"jobs_done\":" << done
           << ",\"jobs_total\":" << total << ",\"cache_hits\":" << hits
           << ",\"eta_seconds\":" << eta << '}';
    }

    os << "}\n";
    *file << os.str() << std::flush;
}

/** Single-line live display, redrawn in place. Caller holds mu_. */
void
Telemetry::paintTty(double host_seconds)
{
    std::uint64_t events = 0, backlog = 0;
    for (const Run &run : runs_) {
        events += run.board->totalEvents();
        backlog += run.board->totalBacklog();
    }
    const double dt = host_seconds - lastTtyTime_;
    const double rate =
        dt > 0 && events >= lastEvents_
            ? static_cast<double>(events - lastEvents_) / dt
            : 0;
    lastEvents_ = events;
    lastTtyTime_ = host_seconds;

    std::ostringstream line;
    line << "\r[netcrafter] " << humanCount(static_cast<double>(events))
         << " ev";
    if (rate > 0)
        line << " @ " << humanCount(rate) << " ev/s";
    line << " | backlog " << humanCount(static_cast<double>(backlog));

    std::uint64_t done = 0, total = 0;
    for (const SweepProgress *sweep : sweeps_) {
        done += sweep->jobsDone.load(std::memory_order_relaxed);
        total += sweep->jobsTotal.load(std::memory_order_relaxed);
    }
    if (total > 0) {
        line << " | jobs " << done << '/' << total;
        if (done > 0 && total >= done) {
            const double eta = host_seconds *
                               static_cast<double>(total - done) /
                               static_cast<double>(done);
            line << " eta " << humanCount(eta) << 's';
        }
    }
    line << "   ";
    std::cerr << line.str() << std::flush;
}

bool
profilingArmed(bool tracing_enabled)
{
    static const bool env_profile = [] {
        const char *v = std::getenv("NETCRAFTER_PROFILE");
        return v != nullptr &&
               parseBoolEnv("NETCRAFTER_PROFILE", v);
    }();
    return tracing_enabled || env_profile ||
           Telemetry::instance().running();
}

} // namespace netcrafter::obs
