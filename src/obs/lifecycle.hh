/**
 * @file
 * Packet-lifecycle folding: pairs up stage records from the canonical
 * merged trace stream into per-stage latency breakdown distributions
 * (wire flight, PTW walk, request round-trip) and per-stage event
 * counters, all registered under "obs." in a stats::Registry.
 *
 * Lives in obs rather than exp because the harness writes these stats
 * alongside the trace files and exp already depends on harness — obs is
 * below both.
 */

#ifndef NETCRAFTER_OBS_LIFECYCLE_HH
#define NETCRAFTER_OBS_LIFECYCLE_HH

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/trace.hh"
#include "src/stats/stats.hh"

namespace netcrafter::obs {

/**
 * Fold @p records (merged/sorted) into @p reg:
 *  - obs.stage.<name> counters: events per lifecycle stage;
 *  - obs.wireFlightCycles: WireDepart -> WireArrive latency per flit,
 *    matched by (lane, packet id, seq);
 *  - obs.walkCycles: WalkStart -> WalkEnd latency, FIFO-matched per
 *    (lane, vpn) so waiter-merged walks pair with their primary;
 *  - obs.requestRoundTripCycles: RdmaInject -> Complete latency per
 *    request id (needs level >= packets);
 *  - obs.responseFlightCycles: response inject -> delivery latency as
 *    reported by the Complete record.
 */
void foldLifecycle(const std::vector<TraceRecord> &records,
                   stats::Registry &reg);

/**
 * Dump @p reg as JSON ({"counters": {...}, "averages": {...},
 * "distributions": {...}}), matching the exp exporter's layout so
 * existing tooling reads both.
 */
void writeRegistryJson(const stats::Registry &reg, std::ostream &os);

} // namespace netcrafter::obs

#endif // NETCRAFTER_OBS_LIFECYCLE_HH
