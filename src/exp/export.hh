/**
 * @file
 * Machine-readable exporters: sweep / cache results as JSON or CSV and
 * a stats::Registry as JSON, alongside the human-oriented table
 * printer. Both result formats share one field registry so their
 * schemas cannot drift apart.
 */

#ifndef NETCRAFTER_EXP_EXPORT_HH
#define NETCRAFTER_EXP_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/exp/result_cache.hh"
#include "src/exp/scheduler.hh"
#include "src/harness/runner.hh"
#include "src/stats/stats.hh"

namespace netcrafter::exp {

/** One exportable row: an identified RunResult. */
struct ExportRecord
{
    /** Job name within its sweep; empty for anonymous cache entries. */
    std::string label;

    std::uint64_t configDigest = 0;
    double scale = 1.0;
    harness::RunResult result;
};

/** Every job of a finished sweep, in spec order. */
std::vector<ExportRecord> recordsFromSweep(const SweepSpec &spec,
                                           const SweepResult &result);

/**
 * Every job a scheduler has run across all its sweeps, labelled with
 * sweep-qualified job names ("<sweep>/<job>").
 */
std::vector<ExportRecord> recordsFromScheduler(const Scheduler &scheduler);

/** Every completed cache entry, key-ordered. */
std::vector<ExportRecord> recordsFromCache(const ResultCache &cache);

/** CSV with a header row; one line per record. */
void writeCsv(const std::vector<ExportRecord> &records, std::ostream &os);

/** JSON object {"results": [...]} with one object per record. */
void writeJson(const std::vector<ExportRecord> &records, std::ostream &os);

/**
 * JSON object with "counters", "averages" and "distributions" sections
 * mirroring Registry::dump.
 */
void writeRegistryJson(const stats::Registry &registry, std::ostream &os);

/** Backslash-escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace netcrafter::exp

#endif // NETCRAFTER_EXP_EXPORT_HH
