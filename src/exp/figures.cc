#include "src/exp/figures.hh"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/harness/runner.hh"
#include "src/harness/table.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::exp {

namespace {

using harness::Table;

std::vector<std::string>
apps()
{
    return workloads::workloadNames();
}

// --- Figure 3: ideal vs baseline --------------------------------------

void
runFig03(FigureContext &ctx)
{
    banner(ctx.out, "Figure 3",
           "ideal (all-high-bandwidth) speedup over baseline");

    SweepSpec spec("fig03");
    spec.addGrid(apps(), {{"base", config::baselineConfig()},
                          {"ideal", config::idealConfig()}});
    const SweepResult res = ctx.scheduler.run(spec);

    Table table(
        {"app", "baseline cycles", "ideal cycles", "ideal speedup"});
    std::vector<double> speedups;
    for (const auto &app : apps()) {
        const auto &base = res.at("base/" + app);
        const auto &ideal = res.at("ideal/" + app);
        const double s = speedup(base, ideal);
        speedups.push_back(s);
        table.addRow({app, std::to_string(base.cycles),
                      std::to_string(ideal.cycles), Table::fmt(s)});
    }
    table.print(ctx.out);
    ctx.out << "\ngeomean ideal speedup: "
            << Table::fmt(harness::geomean(speedups))
            << "x   (paper: ~1.5x average)\n";
}

// --- Figure 9: PTW vs data traffic share -------------------------------

void
runFig09(FigureContext &ctx)
{
    banner(ctx.out, "Figure 9",
           "PTW-related vs data bytes on the inter-cluster "
           "network (baseline)");

    SweepSpec spec("fig09");
    spec.addGrid(apps(), {{"base", config::baselineConfig()}});
    const SweepResult res = ctx.scheduler.run(spec);

    Table table({"app", "PTW share", "data share"});
    double sum = 0;
    int n = 0;
    for (const auto &app : apps()) {
        const auto &base = res.at("base/" + app);
        if (base.interUsefulBytes == 0) {
            table.addRow({app, "-", "-"});
            continue;
        }
        sum += base.ptwByteFraction;
        ++n;
        table.addRow({app, Table::pct(base.ptwByteFraction),
                      Table::pct(1.0 - base.ptwByteFraction)});
    }
    table.print(ctx.out);
    if (n > 0) {
        ctx.out << "\nmean PTW share: " << Table::pct(sum / n)
                << "  (paper: ~13% average)\n";
    }
}

// --- Figure 14: overall performance (headline) -------------------------

void
runFig14(FigureContext &ctx)
{
    banner(ctx.out, "Figure 14",
           "speedup over the non-uniform baseline (cumulative "
           "mechanisms)");

    SweepSpec spec("fig14");
    spec.addGrid(apps(), {{"base", config::baselineConfig()},
                          {"stitch", stitchSelective32()},
                          {"trim", stitchTrim()},
                          {"full", fullNetcrafter()},
                          {"sector", config::sectorCacheConfig(16)}});
    const SweepResult res = ctx.scheduler.run(spec);

    Table table({"app", "Stitching", "+Trimming",
                 "+Sequencing (NetCrafter)", "SectorCache16B"});
    std::vector<double> s1, s2, s3, s4;
    for (const auto &app : apps()) {
        const auto &base = res.at("base/" + app);
        s1.push_back(speedup(base, res.at("stitch/" + app)));
        s2.push_back(speedup(base, res.at("trim/" + app)));
        s3.push_back(speedup(base, res.at("full/" + app)));
        s4.push_back(speedup(base, res.at("sector/" + app)));
        table.addRow({app, Table::fmt(s1.back()), Table::fmt(s2.back()),
                      Table::fmt(s3.back()), Table::fmt(s4.back())});
    }
    table.print(ctx.out);
    ctx.out << "\ngeomean speedup: stitching "
            << Table::fmt(harness::geomean(s1)) << "x, +trimming "
            << Table::fmt(harness::geomean(s2))
            << "x, full NetCrafter "
            << Table::fmt(harness::geomean(s3)) << "x, sector-cache "
            << Table::fmt(harness::geomean(s4)) << "x\n"
            << "(paper: full NetCrafter up to 1.64x, avg 1.16x; "
               "sector cache helps <=16B apps, hurts coarse-grained "
               "ones)\n";
}

// --- Figure 20: wire-byte reduction ------------------------------------

void
runFig20(FigureContext &ctx)
{
    banner(ctx.out, "Figure 20",
           "inter-cluster wire bytes, normalized to baseline");

    const std::vector<Tick> windows = {32, 64, 96, 128};
    SweepSpec spec("fig20");
    std::vector<ConfigPoint> configs = {
        {"base", config::baselineConfig()},
        {"stitch", config::stitchingConfig(false)}};
    for (Tick w : windows) {
        configs.push_back({"selpool" + std::to_string(w),
                           config::stitchingConfig(true, true, w)});
    }
    spec.addGrid(apps(), configs);
    const SweepResult res = ctx.scheduler.run(spec);

    std::vector<std::string> headers = {"app", "stitch only"};
    for (Tick w : windows)
        headers.push_back("selpool " + std::to_string(w));
    Table table(headers);

    std::vector<double> sums(windows.size() + 1, 0.0);
    int n = 0;
    for (const auto &app : apps()) {
        const auto &base = res.at("base/" + app);
        if (base.interWireBytes == 0) {
            table.addRow({app, "-"});
            continue;
        }
        ++n;
        std::vector<std::string> row{app};

        const auto &alone = res.at("stitch/" + app);
        double ratio = static_cast<double>(alone.interWireBytes) /
                       static_cast<double>(base.interWireBytes);
        sums[0] += ratio;
        row.push_back(Table::fmt(ratio, 3));

        for (std::size_t i = 0; i < windows.size(); ++i) {
            const auto &pooled = res.at(
                "selpool" + std::to_string(windows[i]) + "/" + app);
            ratio = static_cast<double>(pooled.interWireBytes) /
                    static_cast<double>(base.interWireBytes);
            sums[i + 1] += ratio;
            row.push_back(Table::fmt(ratio, 3));
        }
        table.addRow(std::move(row));
    }
    table.print(ctx.out);

    if (n > 0) {
        ctx.out << "\nmean byte ratio: stitch-only "
                << Table::fmt(sums[0] / n, 3);
        for (std::size_t i = 0; i < windows.size(); ++i) {
            ctx.out << ", selpool-" << windows[i] << " "
                    << Table::fmt(sums[i + 1] / n, 3);
        }
        ctx.out << "\n(paper: pooling deepens savings; the curve "
                   "flattens past a 32-cycle window)\n";
    }
}

// --- Figure 22: bandwidth sweep ----------------------------------------

struct BwPoint
{
    const char *label;
    double intra;
    double inter;
};

const std::vector<BwPoint> &
bwPoints()
{
    static const std::vector<BwPoint> points = {
        {"128:16 (8:1, baseline)", 128, 16},
        {"256:32 (8:1)", 256, 32},
        {"512:64 (8:1)", 512, 64},
        {"128:32 (4:1)", 128, 32},
        {"128:64 (2:1)", 128, 64},
        {"32:32 (homogeneous)", 32, 32},
    };
    return points;
}

void
runFig22(FigureContext &ctx)
{
    banner(ctx.out, "Figure 22",
           "NetCrafter speedup across bandwidth configurations");

    const auto &points = bwPoints();
    SweepSpec spec("fig22");
    std::vector<ConfigPoint> configs;
    for (std::size_t i = 0; i < points.size(); ++i) {
        config::SystemConfig base = config::baselineConfig();
        base.intraClusterGBps = points[i].intra;
        base.interClusterGBps = points[i].inter;
        config::SystemConfig nc = fullNetcrafter();
        nc.intraClusterGBps = points[i].intra;
        nc.interClusterGBps = points[i].inter;
        configs.push_back({"base" + std::to_string(i), base});
        configs.push_back({"nc" + std::to_string(i), nc});
    }
    spec.addGrid(apps(), configs);
    const SweepResult res = ctx.scheduler.run(spec);

    std::vector<std::string> headers = {"app"};
    for (const auto &p : points)
        headers.push_back(p.label);
    Table table(headers);

    std::vector<std::vector<double>> speedups(points.size());
    for (const auto &app : apps()) {
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto &b = res.at("base" + std::to_string(i) + "/" + app);
            const auto &v = res.at("nc" + std::to_string(i) + "/" + app);
            speedups[i].push_back(speedup(b, v));
            row.push_back(Table::fmt(speedups[i].back(), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(ctx.out);

    ctx.out << "\ngeomean per configuration:";
    for (std::size_t i = 0; i < points.size(); ++i) {
        ctx.out << "  [" << points[i].label << "] "
                << Table::fmt(harness::geomean(speedups[i]), 3);
    }
    ctx.out << "\n(paper: consistent gains across every ratio, "
               "largest under the tightest bandwidth)\n";
}

} // namespace

const std::vector<Figure> &
figureRegistry()
{
    static const std::vector<Figure> figures = {
        {"fig03", "ideal (all-high-bandwidth) speedup over baseline",
         runFig03},
        {"fig09",
         "PTW-related vs data bytes on the inter-cluster network",
         runFig09},
        {"fig14",
         "overall speedup of NetCrafter's cumulative mechanisms",
         runFig14},
        {"fig20", "inter-cluster wire bytes, normalized to baseline",
         runFig20},
        {"fig22", "NetCrafter speedup across bandwidth configurations",
         runFig22},
    };
    return figures;
}

const Figure *
findFigure(const std::string &name)
{
    for (const auto &fig : figureRegistry()) {
        if (name == fig.name)
            return &fig;
    }
    return nullptr;
}

int
figureMain(const std::string &name)
{
    return figureMain(name, 0, nullptr);
}

int
figureMain(const std::string &name, int argc, char **argv)
{
    const Figure *fig = findFigure(name);
    if (fig == nullptr) {
        std::cerr << "unknown figure '" << name << "'\n";
        return 1;
    }
    Scheduler::Options opts;
    if (const char *env = std::getenv("NETCRAFTER_JOBS"))
        opts.workers = static_cast<unsigned>(std::atoi(env));
    if (const char *env = std::getenv("NETCRAFTER_SHARDS"))
        opts.shards = harness::parseShardsEnv(env);
    // Flags below override the NETCRAFTER_TRACE_* environment.
    opts.trace = obs::TraceOptions::fromEnv();
    bool explicit_level = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "--shards") && i + 1 < argc) {
            const long n = std::atol(argv[++i]);
            if (n < 0 || (arg == "--shards" && n < 1)) {
                std::cerr << arg << " requires a positive integer\n";
                return 1;
            }
            (arg == "--jobs" ? opts.workers : opts.shards) =
                static_cast<unsigned>(n);
        } else if (arg == "--trace-out" && i + 1 < argc) {
            opts.trace.outDir = argv[++i];
        } else if (arg == "--trace-level" && i + 1 < argc) {
            opts.trace.level = obs::TraceOptions::parseLevel(argv[++i]);
            explicit_level = true;
        } else if (arg == "--sample-interval" && i + 1 < argc) {
            const long n = std::atol(argv[++i]);
            if (n < 0) {
                std::cerr << arg << " requires a non-negative integer\n";
                return 1;
            }
            opts.trace.sampleInterval = static_cast<Tick>(n);
        } else if (arg == "--fidelity" && i + 1 < argc) {
            opts.fidelity =
                flow::parseFidelityOrDie(argv[++i], "--fidelity");
        } else {
            std::cerr << "usage: " << name
                      << " [--jobs N] [--shards N] [--trace-out DIR]"
                         " [--trace-level off|links|packets|full]"
                         " [--sample-interval TICKS]"
                         " [--fidelity cycle|flow|hybrid]\n";
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }
    // Asking for output or sampling without naming a tier means the
    // caller wants tracing; default to the packet tier (mirrors
    // TraceOptions::fromEnv).
    if (!explicit_level && !opts.trace.enabled() &&
        (!opts.trace.outDir.empty() || opts.trace.sampleInterval > 0))
        opts.trace.level = obs::TraceLevel::Packets;
    if (opts.fidelity != flow::Fidelity::Cycle && opts.shards > 1) {
        std::cerr << "--fidelity " << flow::fidelityName(opts.fidelity)
                  << " requires --shards 1 (the flow lane is a "
                     "single-engine fast path)\n";
        return 1;
    }
    ResultCache cache;
    Scheduler scheduler(opts, &cache);
    FigureContext ctx{scheduler, std::cout};
    fig->run(ctx);
    return 0;
}

config::SystemConfig
stitchSelective32()
{
    return config::stitchingConfig(true, true, 32);
}

config::SystemConfig
stitchTrim()
{
    config::SystemConfig cfg = stitchSelective32();
    cfg.netcrafter.trimming = true;
    cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
    return cfg;
}

config::SystemConfig
fullNetcrafter()
{
    return config::netcrafterConfig();
}

void
banner(std::ostream &os, const std::string &fig,
       const std::string &caption)
{
    os << "==============================================\n"
       << fig << " - " << caption << "\n"
       << "==============================================\n";
}

double
speedup(const harness::RunResult &base, const harness::RunResult &v)
{
    return static_cast<double>(base.cycles) /
           static_cast<double>(v.cycles);
}

} // namespace netcrafter::exp
