/**
 * @file
 * Saturation-curve driver for the open-loop serving subsystem: sweep
 * offered load over a range for each named system configuration
 * (typically baseline vs. full NetCrafter), collect per-class latency
 * percentiles at every point, and locate each configuration's
 * saturation knee — the lowest offered load whose aggregate p99 blows
 * past the low-load p99. This is the serving-side counterpart of the
 * paper's speedup figures: it shows how much more load the NetCrafter
 * mechanisms sustain before tail latency collapses.
 */

#ifndef NETCRAFTER_EXP_SERVE_CURVE_HH
#define NETCRAFTER_EXP_SERVE_CURVE_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/exp/scheduler.hh"
#include "src/exp/sweep.hh"
#include "src/harness/runner.hh"
#include "src/serve/serve_config.hh"

namespace netcrafter::exp {

/** One saturation-curve experiment. */
struct ServeCurveSpec
{
    /**
     * Scenario template: arrival process, mix, phases, seed. Its
     * offeredLoad is overwritten by each sweep point; enabled is
     * forced on.
     */
    serve::ServeConfig serve;

    /** Offered-load sweep: start..stop inclusive, stepping by step. */
    double loadStart = 2.0;
    double loadStop = 10.0;
    double loadStep = 2.0;

    /** Configurations to draw one curve each for. */
    std::vector<ConfigPoint> configs;

    /** Extra footprint multiplier on top of envScale(). */
    double scale = 1.0;

    /**
     * Knee threshold: the knee is the lowest load whose aggregate p99
     * exceeds kneeFactor x the p99 at the lowest load of the same
     * curve.
     */
    double kneeFactor = 3.0;
};

/** One simulated point of one curve. */
struct ServeCurvePoint
{
    std::string configLabel;
    double load = 0;
    harness::RunResult result;
};

/** The collected curves plus the knee of each. */
struct ServeCurveResult
{
    /** Points grouped by config, loads ascending within each group. */
    std::vector<ServeCurvePoint> points;

    /** Config label -> knee load; absent when no point crossed. */
    std::map<std::string, double> kneeLoad;
};

/** The offered-load values the spec sweeps (validated; NC_FATAL on
 *  an empty or non-positive range). */
std::vector<double> serveCurveLoads(const ServeCurveSpec &spec);

/** Build the sweep (one serve job per config x load), named
 *  "<label>/load=<load>". */
SweepSpec serveCurveSweep(const ServeCurveSpec &spec);

/** Run the whole experiment through @p scheduler. */
ServeCurveResult runServeCurve(Scheduler &scheduler,
                               const ServeCurveSpec &spec);

/** Print the per-point table and knee summary. */
void printServeCurve(const ServeCurveResult &result, std::ostream &os);

} // namespace netcrafter::exp

#endif // NETCRAFTER_EXP_SERVE_CURVE_HH
