/**
 * @file
 * Declarative figure definitions. Each migrated figure of the paper's
 * evaluation is a named entry that (1) declares its sweep — every
 * (workload, config, scale) point it needs — and (2) renders the
 * paper's rows from the collected results. The sweep runs through a
 * Scheduler, so figures share a ResultCache (the baseline is simulated
 * once per process, not once per figure) and parallelize across cores,
 * while the printed output stays byte-identical to the legacy serial
 * binaries.
 */

#ifndef NETCRAFTER_EXP_FIGURES_HH
#define NETCRAFTER_EXP_FIGURES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "src/config/system_config.hh"
#include "src/exp/scheduler.hh"
#include "src/harness/runner.hh"

namespace netcrafter::exp {

/** Everything a figure needs to run: a scheduler (with its cache) and
 *  the stream the paper's rows go to. */
struct FigureContext
{
    Scheduler &scheduler;
    std::ostream &out;
};

/** One reproducible figure of the evaluation. */
struct Figure
{
    const char *name;    // short id, e.g. "fig14"
    const char *caption; // banner caption
    void (*run)(FigureContext &ctx);
};

/** Every migrated figure, in paper order. */
const std::vector<Figure> &figureRegistry();

/** Figure by short id; null when unknown. */
const Figure *findFigure(const std::string &name);

/**
 * Entry point for the per-figure binaries: run one figure on stdout
 * with a private cache. Worker count comes from NETCRAFTER_JOBS
 * (default: one per hardware thread) and the intra-run shard count
 * from NETCRAFTER_SHARDS (default 1 = serial); the argv form also
 * accepts `--jobs N` and `--shards N`, which take precedence over the
 * environment. Returns a process exit code.
 */
int figureMain(const std::string &name);
int figureMain(const std::string &name, int argc, char **argv);

// --- Shared helpers (previously in bench/bench_common.hh) -------------

/** Baseline + Stitching with Selective Flit Pooling at the sweet spot. */
config::SystemConfig stitchSelective32();

/** Stitching(+SelPool) + Trimming. */
config::SystemConfig stitchTrim();

/** The full NetCrafter design point (adds Sequencing). */
config::SystemConfig fullNetcrafter();

/** Print the standard figure banner. */
void banner(std::ostream &os, const std::string &fig,
            const std::string &caption);

/** Speedup of @p v over @p base execution cycles. */
double speedup(const harness::RunResult &base,
               const harness::RunResult &v);

} // namespace netcrafter::exp

#endif // NETCRAFTER_EXP_FIGURES_HH
