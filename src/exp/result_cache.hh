/**
 * @file
 * Cross-sweep result cache. Design points are identified by
 * (workload, config digest, scale); points shared between figures (the
 * baseline configuration appears in almost every one) are simulated
 * once per process and every later request is served from memory. The
 * cache is thread-safe and deduplicates in-flight work: when two
 * workers ask for the same key concurrently, one simulates and the
 * other blocks until the result is ready.
 */

#ifndef NETCRAFTER_EXP_RESULT_CACHE_HH
#define NETCRAFTER_EXP_RESULT_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/exp/sweep.hh"
#include "src/flow/fidelity.hh"
#include "src/harness/runner.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter::exp {

/** Identity of a unique simulation point. */
struct CacheKey
{
    std::string workload;
    std::uint64_t configDigest = 0;
    double scale = 1.0;

    /**
     * Digest of the serving scenario; 0 for closed-loop jobs, so
     * pre-serving cache keys are unchanged. Like configDigest it
     * captures what is simulated (arrival process, load, mix, phases,
     * seed) and still excludes how (the shard count).
     */
    std::uint64_t serveDigest = 0;

    /**
     * Simulation fidelity the point ran at. Unlike the shard count this
     * IS part of the identity: flow/hybrid results approximate the
     * cycle measurement, so a cycle-accurate request must never be
     * served a flow-fidelity result (or vice versa).
     */
    flow::Fidelity fidelity = flow::Fidelity::Cycle;

    /**
     * Synchronization mode and skew bound the point ran under. Like
     * fidelity these ARE part of the identity: a Relaxed run
     * approximates the Strict measurement within the audited error
     * budget, and two Relaxed runs with different skew bounds are
     * different approximations. The skew bound is normalized to 0 for
     * Strict keys so Strict requests are insensitive to it.
     */
    sim::SyncMode syncMode = sim::SyncMode::Strict;
    Tick skewBound = 0;

    bool
    operator<(const CacheKey &o) const
    {
        return std::tie(workload, configDigest, scale, serveDigest,
                        fidelity, syncMode, skewBound) <
               std::tie(o.workload, o.configDigest, o.scale,
                        o.serveDigest, o.fidelity, o.syncMode,
                        o.skewBound);
    }

    bool
    operator==(const CacheKey &o) const
    {
        return workload == o.workload && configDigest == o.configDigest &&
               scale == o.scale && serveDigest == o.serveDigest &&
               fidelity == o.fidelity && syncMode == o.syncMode &&
               skewBound == o.skewBound;
    }
};

/** The key identifying @p job's simulation point at cycle fidelity
 *  under strict synchronization. */
CacheKey keyOf(const Job &job);

/** The key identifying @p job's simulation point at @p fidelity under
 *  strict synchronization. */
CacheKey keyOf(const Job &job, flow::Fidelity fidelity);

/** The key identifying @p job's simulation point at @p fidelity under
 *  @p sync (the skew bound is normalized to 0 for Strict keys). */
CacheKey keyOf(const Job &job, flow::Fidelity fidelity,
               const sim::SyncPolicy &sync);

class ResultCache
{
  public:
    using RunFn = std::function<harness::RunResult()>;

    /**
     * Return the cached result for @p key, or execute @p run to produce
     * it. Exactly one caller executes @p run per key; concurrent
     * requesters for the same key block until it finishes.
     * @p was_hit (optional) reports whether this call avoided a
     * simulation.
     */
    harness::RunResult getOrRun(const CacheKey &key, const RunFn &run,
                                bool *was_hit = nullptr);

    /** Requests served without executing a simulation. */
    std::uint64_t hits() const;

    /** Simulations actually executed (== unique keys ever requested). */
    std::uint64_t misses() const;

    /** Completed entries resident in the cache. */
    std::size_t size() const;

    /** Copy of every completed (key, result) pair, key-ordered. */
    std::vector<std::pair<CacheKey, harness::RunResult>> snapshot() const;

  private:
    struct Entry
    {
        bool ready = false;
        harness::RunResult result;
    };

    mutable std::mutex mu_;
    std::condition_variable ready_cv_;
    std::map<CacheKey, Entry> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace netcrafter::exp

#endif // NETCRAFTER_EXP_RESULT_CACHE_HH
