/**
 * @file
 * Declarative experiment sweeps: a SweepSpec names every
 * (workload, configuration, scale) design point of an experiment up
 * front, so a scheduler can run the points in any order (or in
 * parallel, or from a cache) and the figure code can look results up by
 * name afterwards.
 */

#ifndef NETCRAFTER_EXP_SWEEP_HH
#define NETCRAFTER_EXP_SWEEP_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/config/system_config.hh"
#include "src/serve/serve_config.hh"

namespace netcrafter::exp {

/** One design point: simulate @p workload under @p config at @p scale. */
struct Job
{
    /** Unique name within the sweep, e.g. "ideal/GUPS". */
    std::string name;

    /**
     * Table 3 abbreviation or "GEMM" for closed-loop jobs; ignored
     * (and conventionally "serve-<arrival>") when serve.enabled.
     */
    std::string workload;

    config::SystemConfig config;

    /** Extra problem-size multiplier on top of envScale(). */
    double scale = 1.0;

    /**
     * Open-loop serving scenario. When enabled the scheduler runs
     * harness::runServe instead of runWorkload, and the serve digest
     * becomes part of the job's cache identity.
     */
    serve::ServeConfig serve;
};

/** A named configuration used when building grids. */
struct ConfigPoint
{
    std::string label;
    config::SystemConfig config;
};

/** An ordered collection of uniquely named jobs. */
class SweepSpec
{
  public:
    explicit SweepSpec(std::string name) : name_(std::move(name)) {}

    /** Append one job; fatal if @p job_name is already taken. */
    Job &add(std::string job_name, std::string workload,
             config::SystemConfig cfg, double scale = 1.0);

    /**
     * Cross product: every workload under every configuration, named
     * "<config label>/<workload>".
     */
    void addGrid(const std::vector<std::string> &workload_names,
                 const std::vector<ConfigPoint> &configs,
                 double scale = 1.0);

    const std::string &name() const { return name_; }
    const std::vector<Job> &jobs() const { return jobs_; }
    std::size_t size() const { return jobs_.size(); }

    /** Index of the job named @p job_name; fatal if absent. */
    std::size_t indexOf(const std::string &job_name) const;

    bool contains(const std::string &job_name) const
    {
        return by_name_.count(job_name) != 0;
    }

  private:
    std::string name_;
    std::vector<Job> jobs_;
    std::map<std::string, std::size_t> by_name_;
};

} // namespace netcrafter::exp

#endif // NETCRAFTER_EXP_SWEEP_HH
