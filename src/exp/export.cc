#include "src/exp/export.hh"

#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "src/flow/fidelity.hh"
#include "src/sim/sharded_engine.hh"

namespace netcrafter::exp {

namespace {

/** Render @p v with round-trip precision (no locale, no padding). */
std::string
num(double v)
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
}

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

/** One exported column: name plus a value renderer. */
struct FieldDef
{
    const char *name;
    std::string (*value)(const ExportRecord &);
    bool quoted; // JSON: emit as string rather than number
};

#define STR_FIELD(name, expr)                                            \
    FieldDef                                                             \
    {                                                                    \
        name, [](const ExportRecord &r) { return std::string(expr); },   \
            true                                                         \
    }
#define NUM_FIELD(name, expr)                                            \
    FieldDef                                                             \
    {                                                                    \
        name, [](const ExportRecord &r) { return num(expr); }, false     \
    }

const std::vector<FieldDef> &
fields()
{
    static const std::vector<FieldDef> defs = {
        STR_FIELD("job", r.label),
        STR_FIELD("workload", r.result.workload),
        FieldDef{"config_digest",
                 [](const ExportRecord &r) {
                     return config::digestHex(r.configDigest);
                 },
                 true},
        NUM_FIELD("scale", r.scale),
        NUM_FIELD("cycles", static_cast<std::uint64_t>(r.result.cycles)),
        NUM_FIELD("events", r.result.events),
        NUM_FIELD("instructions", r.result.instructions),
        NUM_FIELD("l1_read_accesses", r.result.l1ReadAccesses),
        NUM_FIELD("l1_read_misses", r.result.l1ReadMisses),
        NUM_FIELD("l1_mpki", r.result.l1Mpki),
        NUM_FIELD("inter_flits", r.result.interFlits),
        NUM_FIELD("inter_wire_bytes", r.result.interWireBytes),
        NUM_FIELD("inter_useful_bytes", r.result.interUsefulBytes),
        NUM_FIELD("inter_utilization", r.result.interUtilization),
        NUM_FIELD("ptw_byte_fraction", r.result.ptwByteFraction),
        NUM_FIELD("padded_flit_fraction", r.result.paddedFlitFraction),
        NUM_FIELD("quarter_padded_fraction",
                  r.result.quarterPaddedFraction),
        NUM_FIELD("three_quarter_padded_fraction",
                  r.result.threeQuarterPaddedFraction),
        NUM_FIELD("stitched_fraction", r.result.stitchedFraction),
        NUM_FIELD("stitched_pieces", r.result.stitchedPieces),
        NUM_FIELD("trimmed_packets", r.result.trimmedPackets),
        NUM_FIELD("bytes_trimmed", r.result.bytesTrimmed),
        NUM_FIELD("pooling_arms", r.result.poolingArms),
        NUM_FIELD("avg_inter_read_latency", r.result.avgInterReadLatency),
        NUM_FIELD("inter_reads", r.result.interReads),
        NUM_FIELD("remote_reads", r.result.remoteReads),
        NUM_FIELD("local_reads", r.result.localReads),
        NUM_FIELD("page_walks", r.result.pageWalks),
        NUM_FIELD("mean_walk_length", r.result.meanWalkLength),
        NUM_FIELD("bytes_needed_le16", r.result.bytesNeededFrac[0]),
        NUM_FIELD("bytes_needed_le32", r.result.bytesNeededFrac[1]),
        NUM_FIELD("bytes_needed_le48", r.result.bytesNeededFrac[2]),
        NUM_FIELD("bytes_needed_lt64", r.result.bytesNeededFrac[3]),
        NUM_FIELD("bytes_needed_64", r.result.bytesNeededFrac[4]),
        NUM_FIELD("wall_seconds", r.result.wallSeconds),
        // Hot-path census columns are appended at the end so existing
        // consumers keyed on the header prefix keep working.
        NUM_FIELD("events_per_second", r.result.eventsPerSecond),
        NUM_FIELD("near_events", r.result.nearEvents),
        NUM_FIELD("far_events", r.result.farEvents),
        NUM_FIELD("callback_pool_high_water",
                  r.result.callbackPoolHighWater),
        NUM_FIELD("callback_arena_bytes", r.result.callbackArenaBytes),
        NUM_FIELD("packet_pool_high_water", r.result.packetPoolHighWater),
        NUM_FIELD("flit_pool_high_water", r.result.flitPoolHighWater),
        NUM_FIELD("pool_arena_bytes", r.result.poolArenaBytes),
        NUM_FIELD("smallfn_heap_allocs", r.result.smallFnHeapAllocs),
        // Sharded-execution diagnostics (all zero/one when serial).
        NUM_FIELD("shards", std::uint64_t{r.result.shards}),
        NUM_FIELD("quanta_executed", r.result.quantaExecuted),
        NUM_FIELD("barrier_stall_ticks", r.result.barrierStallTicks),
        NUM_FIELD("cross_shard_flits", r.result.crossShardFlits),
        NUM_FIELD("max_ingress_depth", r.result.maxIngressDepth),
        NUM_FIELD("barrier_rounds_skipped", r.result.barrierRoundsSkipped),
        NUM_FIELD("idle_parks", r.result.idleParks),
        NUM_FIELD("work_threads", std::uint64_t{r.result.workThreads}),
        NUM_FIELD("steal_attempts", r.result.stealAttempts),
        NUM_FIELD("steals_won", r.result.stealsWon),
        NUM_FIELD("steals_aborted", r.result.stealsAborted),
        NUM_FIELD("covered_stall_ticks", r.result.coveredStallTicks),
        NUM_FIELD("residual_stall_ticks", r.result.residualStallTicks),
        NUM_FIELD("load_spread_mean", r.result.loadSpreadMean),
        NUM_FIELD("adaptive_window_samples",
                  r.result.adaptiveWindowSamples),
        NUM_FIELD("adaptive_window_ticks_mean",
                  r.result.adaptiveWindowMean),
        NUM_FIELD("adaptive_window_ticks_max", r.result.adaptiveWindowMax),
        // Observability diagnostics (all zero with tracing off).
        NUM_FIELD("trace_records", r.result.traceRecords),
        NUM_FIELD("trace_dropped", r.result.traceDropped),
        NUM_FIELD("sample_rows", r.result.sampleRows),
        // Open-loop serving measurements (all zero for closed-loop
        // jobs); latencies in cycles, classes indexed read/write/ptw
        // with "all" the merged aggregate.
        NUM_FIELD("offered_load", r.result.offeredLoad),
        NUM_FIELD("serve_injected", r.result.serveInjected),
        NUM_FIELD("serve_measured", r.result.serveMeasured),
        NUM_FIELD("serve_completed", r.result.serveCompleted),
        NUM_FIELD("serve_peak_inflight", r.result.servePeakInflight),
        NUM_FIELD("serve_throughput", r.result.serveThroughput),
        NUM_FIELD("serve_read_measured", r.result.serveClasses[0].measured),
        NUM_FIELD("serve_read_mean", r.result.serveClasses[0].meanLatency),
        NUM_FIELD("serve_read_p50", r.result.serveClasses[0].p50),
        NUM_FIELD("serve_read_p95", r.result.serveClasses[0].p95),
        NUM_FIELD("serve_read_p99", r.result.serveClasses[0].p99),
        NUM_FIELD("serve_read_p999", r.result.serveClasses[0].p999),
        NUM_FIELD("serve_write_measured",
                  r.result.serveClasses[1].measured),
        NUM_FIELD("serve_write_mean", r.result.serveClasses[1].meanLatency),
        NUM_FIELD("serve_write_p50", r.result.serveClasses[1].p50),
        NUM_FIELD("serve_write_p95", r.result.serveClasses[1].p95),
        NUM_FIELD("serve_write_p99", r.result.serveClasses[1].p99),
        NUM_FIELD("serve_write_p999", r.result.serveClasses[1].p999),
        NUM_FIELD("serve_ptw_measured", r.result.serveClasses[2].measured),
        NUM_FIELD("serve_ptw_mean", r.result.serveClasses[2].meanLatency),
        NUM_FIELD("serve_ptw_p50", r.result.serveClasses[2].p50),
        NUM_FIELD("serve_ptw_p95", r.result.serveClasses[2].p95),
        NUM_FIELD("serve_ptw_p99", r.result.serveClasses[2].p99),
        NUM_FIELD("serve_ptw_p999", r.result.serveClasses[2].p999),
        NUM_FIELD("serve_all_measured", r.result.serveClasses[3].measured),
        NUM_FIELD("serve_all_mean", r.result.serveClasses[3].meanLatency),
        NUM_FIELD("serve_all_p50", r.result.serveClasses[3].p50),
        NUM_FIELD("serve_all_p95", r.result.serveClasses[3].p95),
        NUM_FIELD("serve_all_p99", r.result.serveClasses[3].p99),
        NUM_FIELD("serve_all_p999", r.result.serveClasses[3].p999),
        // Flow-lane fidelity: the fidelity the run executed at, plus
        // the lane census (all zero at cycle fidelity). The packet and
        // byte pairs are exact-conservation invariants after a drained
        // run; the wait splits decompose flow-lane network latency.
        STR_FIELD("fidelity", flow::fidelityName(r.result.fidelity)),
        NUM_FIELD("flow_packets", r.result.flowPackets),
        NUM_FIELD("flow_cycle_packets", r.result.flowCyclePackets),
        NUM_FIELD("flow_packets_delivered",
                  r.result.flowPacketsDelivered),
        NUM_FIELD("flow_bytes_injected", r.result.flowBytesInjected),
        NUM_FIELD("flow_bytes_delivered", r.result.flowBytesDelivered),
        NUM_FIELD("flow_epochs_closed", r.result.flowEpochsClosed),
        NUM_FIELD("flow_lane_activations", r.result.flowLaneActivations),
        NUM_FIELD("flow_lane_escalations", r.result.flowLaneEscalations),
        NUM_FIELD("flow_recomputes", r.result.flowRecomputes),
        NUM_FIELD("flow_md1_wait_ticks", r.result.flowMd1WaitTicks),
        NUM_FIELD("flow_fifo_wait_ticks", r.result.flowFifoWaitTicks),
        // Host-time self-profiling phase split (all zero unless the
        // run was traced, NETCRAFTER_PROFILE was set, or live
        // telemetry was on) plus the suppressed-warning tally.
        NUM_FIELD("warnings_suppressed", r.result.warningsSuppressed),
        NUM_FIELD("phase_execute_seconds", r.result.phaseExecuteSeconds),
        NUM_FIELD("phase_barrier_wait_seconds",
                  r.result.phaseBarrierWaitSeconds),
        NUM_FIELD("phase_ingress_seconds", r.result.phaseIngressSeconds),
        NUM_FIELD("phase_steal_scan_seconds",
                  r.result.phaseStealScanSeconds),
        NUM_FIELD("phase_export_seconds", r.result.phaseExportSeconds),
        // Relaxed-sync census: the synchronization mode the run
        // executed under, its skew bound, and the observed skew /
        // late-slot tallies (all zero under strict). The delivered
        // pair is the wire-head conservation check.
        STR_FIELD("sync_mode", sim::syncModeName(r.result.syncMode)),
        NUM_FIELD("skew_bound",
                  static_cast<std::uint64_t>(r.result.skewBound)),
        NUM_FIELD("max_observed_skew", r.result.maxObservedSkew),
        NUM_FIELD("mean_observed_skew", r.result.meanObservedSkew),
        NUM_FIELD("late_arrivals", r.result.lateArrivals),
        NUM_FIELD("late_credits", r.result.lateCredits),
        NUM_FIELD("late_displacement_ticks",
                  r.result.lateDisplacementTicks),
        NUM_FIELD("max_late_displacement",
                  r.result.maxLateDisplacement),
        NUM_FIELD("wire_flits_delivered", r.result.wireFlitsDelivered),
        NUM_FIELD("wire_bytes_delivered", r.result.wireBytesDelivered),
    };
    return defs;
}

#undef STR_FIELD
#undef NUM_FIELD

/** CSV-quote @p s only when it contains a delimiter or quote. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::vector<ExportRecord>
recordsFromSweep(const SweepSpec &spec, const SweepResult &result)
{
    std::vector<ExportRecord> out;
    out.reserve(spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const Job &job = spec.jobs()[i];
        out.push_back(ExportRecord{job.name, job.config.digest(),
                                   job.scale, result.results.at(i)});
    }
    return out;
}

std::vector<ExportRecord>
recordsFromScheduler(const Scheduler &scheduler)
{
    std::vector<ExportRecord> out;
    out.reserve(scheduler.history().size());
    for (const auto &[job, result] : scheduler.history())
        out.push_back(ExportRecord{job.name, job.config.digest(),
                                   job.scale, result});
    return out;
}

std::vector<ExportRecord>
recordsFromCache(const ResultCache &cache)
{
    std::vector<ExportRecord> out;
    for (auto &[key, result] : cache.snapshot()) {
        out.push_back(
            ExportRecord{"", key.configDigest, key.scale, result});
    }
    return out;
}

void
writeCsv(const std::vector<ExportRecord> &records, std::ostream &os)
{
    const auto &defs = fields();
    for (std::size_t i = 0; i < defs.size(); ++i)
        os << (i ? "," : "") << defs[i].name;
    os << "\n";
    for (const auto &r : records) {
        for (std::size_t i = 0; i < defs.size(); ++i)
            os << (i ? "," : "") << csvCell(defs[i].value(r));
        os << "\n";
    }
}

void
writeJson(const std::vector<ExportRecord> &records, std::ostream &os)
{
    const auto &defs = fields();
    os << "{\n  \"results\": [";
    for (std::size_t r = 0; r < records.size(); ++r) {
        os << (r ? ",\n    {" : "\n    {");
        for (std::size_t i = 0; i < defs.size(); ++i) {
            const std::string v = defs[i].value(records[r]);
            os << (i ? ", " : "") << "\"" << defs[i].name << "\": ";
            if (defs[i].quoted)
                os << "\"" << jsonEscape(v) << "\"";
            else
                os << v;
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
}

void
writeRegistryJson(const stats::Registry &registry, std::ostream &os)
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : registry.counters()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << c.value();
        first = false;
    }
    os << "\n  },\n  \"averages\": {";
    first = true;
    for (const auto &[name, a] : registry.averages()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"mean\": " << num(a.mean())
           << ", \"min\": " << num(a.min())
           << ", \"max\": " << num(a.max())
           << ", \"count\": " << a.count() << "}";
        first = false;
    }
    os << "\n  },\n  \"distributions\": {";
    first = true;
    for (const auto &[name, d] : registry.distributions()) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"total\": " << d.total() << ", \"bounds\": [";
        for (std::size_t i = 0; i < d.bounds().size(); ++i)
            os << (i ? ", " : "") << num(d.bounds()[i]);
        os << "], \"counts\": [";
        for (std::size_t i = 0; i < d.bounds().size() + 1; ++i)
            os << (i ? ", " : "") << d.bucket(i);
        os << "]}";
        first = false;
    }
    os << "\n  }\n}\n";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace netcrafter::exp
