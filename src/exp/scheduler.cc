#include "src/exp/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/config/exec_config.hh"
#include "src/obs/telemetry.hh"
#include "src/sim/logging.hh"

namespace netcrafter::exp {

const harness::RunResult &
SweepResult::at(const std::string &job_name) const
{
    auto it = index.find(job_name);
    if (it == index.end())
        NC_FATAL("sweep result has no job named '", job_name, "'");
    return results.at(it->second);
}

Scheduler::Scheduler(Options opts, ResultCache *cache)
    : opts_(opts), cache_(cache),
      epoch_(std::chrono::steady_clock::now())
{
    shards_ = opts.shards != 0 ? opts.shards : 1;
    if (opts.workers != 0) {
        workers_ = opts.workers;
    } else {
        // Auto-cap so run-level workers x intra-run shards never
        // oversubscribes the host: each job may occupy up to shards_
        // threads while it executes.
        unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0)
            hw = 1;
        workers_ = std::max(1u, hw / shards_);
    }
}

harness::RunResult
Scheduler::runJob(const Job &job, JobTiming &timing)
{
    const auto t0 = std::chrono::steady_clock::now();
    timing.startSeconds =
        std::chrono::duration<double>(t0 - epoch_).count();
    // With tracing requested the explicit options override the
    // NETCRAFTER_TRACE_* environment; fidelity always comes from the
    // options (whose default already consulted NETCRAFTER_FIDELITY).
    auto simulate = [&] {
        const obs::TraceOptions trace = opts_.trace.enabled()
                                            ? opts_.trace
                                            : obs::TraceOptions::fromEnv();
        const sim::ExecPolicy exec = config::execPolicyFromEnv();
        if (job.serve.enabled) {
            return harness::runServe(job.serve, job.config, job.scale,
                                     shards_, trace, exec,
                                     opts_.fidelity, opts_.sync);
        }
        return harness::runWorkload(job.workload, job.config, job.scale,
                                    shards_, trace, exec,
                                    opts_.fidelity, opts_.sync);
    };
    harness::RunResult result;
    if (cache_ != nullptr) {
        // The cache key deliberately excludes shards_: sharding is an
        // execution strategy, not a design point, and results are
        // bit-identical across shard counts. Fidelity and the sync
        // policy, by contrast, are part of the key — approximate
        // results must never answer an exact request.
        result = cache_->getOrRun(
            keyOf(job, opts_.fidelity, opts_.sync), simulate,
            &timing.cacheHit);
    } else {
        result = simulate();
    }
    timing.name = job.name;
    timing.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return result;
}

SweepResult
Scheduler::run(const SweepSpec &spec)
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult out;
    out.results.resize(spec.size());
    out.timings.resize(spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i)
        out.index.emplace(spec.jobs()[i].name, i);

    const std::uint64_t hits0 = cache_ != nullptr ? cache_->hits() : 0;
    const std::uint64_t misses0 =
        cache_ != nullptr ? cache_->misses() : 0;

    std::ostream &log = opts_.log != nullptr ? *opts_.log : std::cerr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex log_mu;

    // Publish sweep-level progress for the heartbeat/ETA display. Live
    // mode starts the sampler itself (TTY on) if nothing else has;
    // otherwise the counters only feed an already-running sampler.
    if (opts_.progress == ProgressMode::Live &&
        !obs::Telemetry::instance().running()) {
        obs::TelemetryOptions topts = obs::TelemetryOptions::fromEnv();
        topts.tty = true;
        obs::Telemetry::instance().start(topts);
    }
    obs::SweepProgress sweep_progress;
    sweep_progress.jobsTotal.store(spec.size(),
                                   std::memory_order_relaxed);
    obs::Telemetry::instance().registerSweep(&sweep_progress);

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= spec.size())
                return;
            const Job &job = spec.jobs()[i];
            out.results[i] = runJob(job, out.timings[i]);
            sweep_progress.jobsDone.fetch_add(
                1, std::memory_order_relaxed);
            if (out.timings[i].cacheHit) {
                sweep_progress.cacheHits.fetch_add(
                    1, std::memory_order_relaxed);
            }
            const std::size_t finished = done.fetch_add(1) + 1;
            if (opts_.progress == ProgressMode::PerJob) {
                std::ostringstream line;
                line << "[" << finished << "/" << spec.size() << "] "
                     << spec.name() << " " << job.name << " "
                     << out.timings[i].seconds << "s"
                     << (out.timings[i].cacheHit ? " (cached)" : "")
                     << "\n";
                std::lock_guard<std::mutex> lock(log_mu);
                log << line.str() << std::flush;
            }
        }
    };

    const unsigned n_threads = static_cast<unsigned>(
        std::min<std::size_t>(workers_, spec.size()));
    if (n_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    obs::Telemetry::instance().unregisterSweep(&sweep_progress);

    if (cache_ != nullptr) {
        out.cacheHits = cache_->hits() - hits0;
        out.cacheMisses = cache_->misses() - misses0;
    } else {
        out.cacheMisses = spec.size();
    }
    history_.reserve(history_.size() + spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        Job qualified = spec.jobs()[i];
        qualified.name = spec.name() + "/" + qualified.name;
        history_.emplace_back(std::move(qualified), out.results[i]);
    }
    timingHistory_.reserve(timingHistory_.size() + spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        JobTiming qualified = out.timings[i];
        qualified.name = spec.name() + "/" + qualified.name;
        timingHistory_.push_back(std::move(qualified));
    }
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return out;
}

} // namespace netcrafter::exp
