#include "src/exp/serve_curve.hh"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/sim/logging.hh"

namespace netcrafter::exp {

namespace {

std::string
loadLabel(double load)
{
    std::ostringstream os;
    os << load;
    return os.str();
}

} // namespace

std::vector<double>
serveCurveLoads(const ServeCurveSpec &spec)
{
    NC_ASSERT(spec.loadStart > 0, "serve curve must start at a "
              "positive load, got ", spec.loadStart);
    NC_ASSERT(spec.loadStep > 0, "serve curve needs a positive load "
              "step, got ", spec.loadStep);
    NC_ASSERT(spec.loadStop >= spec.loadStart,
              "serve curve range is empty: ", spec.loadStart, "..",
              spec.loadStop);
    std::vector<double> loads;
    // Step by index, not by accumulation, so the points are exactly
    // start + i*step regardless of length.
    const auto n = static_cast<std::size_t>(
        std::floor((spec.loadStop - spec.loadStart) / spec.loadStep +
                   1e-9)) + 1;
    loads.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        loads.push_back(spec.loadStart +
                        static_cast<double>(i) * spec.loadStep);
    return loads;
}

SweepSpec
serveCurveSweep(const ServeCurveSpec &spec)
{
    NC_ASSERT(!spec.configs.empty(),
              "serve curve needs at least one configuration");
    const std::vector<double> loads = serveCurveLoads(spec);

    SweepSpec sweep("serve-curve");
    for (const ConfigPoint &cp : spec.configs) {
        for (double load : loads) {
            serve::ServeConfig sc = spec.serve;
            sc.enabled = true;
            sc.offeredLoad = load;
            sc.validate();
            Job &job = sweep.add(
                cp.label + "/load=" + loadLabel(load),
                std::string("serve-") +
                    serve::arrivalKindName(sc.arrival),
                cp.config, spec.scale);
            job.serve = sc;
        }
    }
    return sweep;
}

ServeCurveResult
runServeCurve(Scheduler &scheduler, const ServeCurveSpec &spec)
{
    const SweepSpec sweep = serveCurveSweep(spec);
    const SweepResult raw = scheduler.run(sweep);
    const std::vector<double> loads = serveCurveLoads(spec);

    ServeCurveResult out;
    for (const ConfigPoint &cp : spec.configs) {
        double baseP99 = 0;
        for (double load : loads) {
            const harness::RunResult &r =
                raw.at(cp.label + "/load=" + loadLabel(load));
            out.points.push_back(ServeCurvePoint{cp.label, load, r});

            const auto p99 = static_cast<double>(
                r.serveClasses[3].p99);
            if (load == loads.front())
                baseP99 = p99;
            // The knee: first load whose aggregate p99 exceeds
            // kneeFactor x the low-load p99 of the same curve.
            if (baseP99 > 0 && p99 > spec.kneeFactor * baseP99 &&
                out.kneeLoad.find(cp.label) == out.kneeLoad.end()) {
                out.kneeLoad.emplace(cp.label, load);
            }
        }
    }
    return out;
}

void
printServeCurve(const ServeCurveResult &result, std::ostream &os)
{
    os << std::left << std::setw(22) << "config" << std::right
       << std::setw(8) << "load" << std::setw(10) << "xput"
       << std::setw(10) << "read_p99" << std::setw(10) << "write_p99"
       << std::setw(10) << "ptw_p99" << std::setw(10) << "all_p50"
       << std::setw(10) << "all_p99" << std::setw(10) << "all_p999"
       << std::setw(10) << "inflight" << "\n";
    for (const ServeCurvePoint &p : result.points) {
        os << std::left << std::setw(22) << p.configLabel << std::right
           << std::setw(8) << p.load << std::setw(10) << std::fixed
           << std::setprecision(2) << p.result.serveThroughput
           << std::defaultfloat << std::setw(10)
           << p.result.serveClasses[0].p99 << std::setw(10)
           << p.result.serveClasses[1].p99 << std::setw(10)
           << p.result.serveClasses[2].p99 << std::setw(10)
           << p.result.serveClasses[3].p50 << std::setw(10)
           << p.result.serveClasses[3].p99 << std::setw(10)
           << p.result.serveClasses[3].p999 << std::setw(10)
           << p.result.servePeakInflight << "\n";
    }
    for (const auto &[label, knee] : result.kneeLoad)
        os << "knee " << label << ": " << knee << " req/kcycle\n";
    if (result.kneeLoad.empty())
        os << "knee: none within the swept range\n";
}

} // namespace netcrafter::exp
