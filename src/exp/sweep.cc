#include "src/exp/sweep.hh"

#include "src/sim/logging.hh"

namespace netcrafter::exp {

Job &
SweepSpec::add(std::string job_name, std::string workload,
               config::SystemConfig cfg, double scale)
{
    auto [it, inserted] =
        by_name_.emplace(std::move(job_name), jobs_.size());
    if (!inserted) {
        NC_FATAL("sweep '", name_, "': duplicate job name '", it->first,
                 "'");
    }
    jobs_.push_back(
        Job{it->first, std::move(workload), std::move(cfg), scale});
    return jobs_.back();
}

void
SweepSpec::addGrid(const std::vector<std::string> &workload_names,
                   const std::vector<ConfigPoint> &configs, double scale)
{
    for (const auto &cfg : configs) {
        for (const auto &w : workload_names)
            add(cfg.label + "/" + w, w, cfg.config, scale);
    }
}

std::size_t
SweepSpec::indexOf(const std::string &job_name) const
{
    auto it = by_name_.find(job_name);
    if (it == by_name_.end())
        NC_FATAL("sweep '", name_, "': no job named '", job_name, "'");
    return it->second;
}

} // namespace netcrafter::exp
