#include "src/exp/result_cache.hh"

namespace netcrafter::exp {

CacheKey
keyOf(const Job &job)
{
    return keyOf(job, flow::Fidelity::Cycle);
}

CacheKey
keyOf(const Job &job, flow::Fidelity fidelity)
{
    return keyOf(job, fidelity, sim::SyncPolicy{});
}

CacheKey
keyOf(const Job &job, flow::Fidelity fidelity,
      const sim::SyncPolicy &sync)
{
    // Strict keys normalize the skew bound to 0: the bound is inert
    // under Strict, and two Strict requests with different (unused)
    // bounds must share one cache entry.
    const Tick bound =
        sync.mode == sim::SyncMode::Relaxed ? sync.skewBound : 0;
    return CacheKey{job.workload, job.config.digest(), job.scale,
                    job.serve.digest(), fidelity, sync.mode, bound};
}

harness::RunResult
ResultCache::getOrRun(const CacheKey &key, const RunFn &run, bool *was_hit)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (!inserted) {
        ++hits_;
        if (was_hit != nullptr)
            *was_hit = true;
        ready_cv_.wait(lock, [&] { return it->second.ready; });
        return it->second.result;
    }

    // First requester for this key: simulate outside the lock so other
    // keys make progress, then publish.
    ++misses_;
    if (was_hit != nullptr)
        *was_hit = false;
    lock.unlock();
    harness::RunResult result = run();
    lock.lock();
    it->second.result = result;
    it->second.ready = true;
    ready_cv_.notify_all();
    return result;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[key, entry] : entries_)
        n += entry.ready ? 1 : 0;
    return n;
}

std::vector<std::pair<CacheKey, harness::RunResult>>
ResultCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<CacheKey, harness::RunResult>> out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_) {
        if (entry.ready)
            out.emplace_back(key, entry.result);
    }
    return out;
}

} // namespace netcrafter::exp
