/**
 * @file
 * Thread-pool sweep scheduler. Jobs of a SweepSpec are independent
 * single-threaded simulations, so the pool runs them concurrently
 * across cores; every job is a pure function of its (workload, config,
 * scale) triple, which makes parallel results bit-identical to a serial
 * run regardless of worker count or completion order.
 */

#ifndef NETCRAFTER_EXP_SCHEDULER_HH
#define NETCRAFTER_EXP_SCHEDULER_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/config/exec_config.hh"
#include "src/exp/result_cache.hh"
#include "src/exp/sweep.hh"
#include "src/flow/fidelity.hh"
#include "src/harness/runner.hh"

namespace netcrafter::exp {

/** Wall-time record of one scheduled job. */
struct JobTiming
{
    std::string name;

    /** Host seconds this job occupied a worker. */
    double seconds = 0;

    /** Host seconds from the scheduler's construction to job start —
     *  places the job on the scheduler's host timeline. */
    double startSeconds = 0;

    /** True when the result came from the cache (no simulation ran). */
    bool cacheHit = false;
};

/** Everything a sweep produced, indexed like the spec's job list. */
struct SweepResult
{
    /** One result per job, in spec order. */
    std::vector<harness::RunResult> results;

    /** One timing record per job, in spec order. */
    std::vector<JobTiming> timings;

    /** Cache hits / simulations executed while running this sweep. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** End-to-end sweep wall time, seconds. */
    double wallSeconds = 0;

    /** Result of the job named @p job_name; fatal if absent. */
    const harness::RunResult &at(const std::string &job_name) const;

    /** Names resolved through the originating spec. */
    std::map<std::string, std::size_t> index;
};

/** How a Scheduler reports progress while a sweep runs. */
enum class ProgressMode
{
    /** Silent. */
    Off,

    /** One line per completed job to SchedulerOptions::log. */
    PerJob,

    /**
     * Single-line live TTY display (rate, backlog, jobs done, ETA)
     * painted by the telemetry sampler; no per-job lines. The
     * scheduler starts the Telemetry singleton if nothing else has.
     */
    Live,
};

struct SchedulerOptions
{
    /** Worker threads; 0 = one per hardware thread. */
    unsigned workers = 0;

    /**
     * Engine shards per simulation (see sim::ShardedEngine); 0 or 1 =
     * serial. With shards > 1 each job occupies up to @p shards host
     * threads, so the default worker count is divided by the shard
     * count — run-level workers times intra-run shards never
     * oversubscribes the machine. An explicit @p workers value is
     * honored as given.
     */
    unsigned shards = 1;

    /** Progress reporting; see ProgressMode. */
    ProgressMode progress = ProgressMode::Off;

    /** Progress sink; null = std::cerr. */
    std::ostream *log = nullptr;

    /**
     * Trace options handed to every simulated job. Disabled by default;
     * when enabled, jobs satisfied from the result cache still produce
     * no trace files (no simulation ran).
     */
    obs::TraceOptions trace{};

    /**
     * Simulation fidelity for every job. Defaults to the validated
     * NETCRAFTER_FIDELITY environment (unset = cycle-accurate). Part
     * of the cache key: jobs running at different fidelities never
     * share results.
     */
    flow::Fidelity fidelity = flow::fidelityFromEnv();

    /**
     * Synchronization policy for every job. Defaults to the validated
     * NETCRAFTER_SYNC / NETCRAFTER_SKEW_BOUND environment (unset =
     * Strict). Part of the cache key, like fidelity: a Relaxed result
     * never answers a Strict request, and Relaxed results at different
     * skew bounds never conflate.
     */
    sim::SyncPolicy sync = config::syncPolicyFromEnv();
};

class Scheduler
{
  public:
    using Options = SchedulerOptions;

    /**
     * @p cache may be null (every job simulates) or shared across many
     * sweeps so common design points run once per process.
     */
    explicit Scheduler(Options opts = {}, ResultCache *cache = nullptr);

    /** Run every job of @p spec; blocks until all complete. */
    SweepResult run(const SweepSpec &spec);

    /** Resolved worker count (>= 1). */
    unsigned workers() const { return workers_; }

    /** Engine shards each job runs with (>= 1). */
    unsigned shards() const { return shards_; }

    ResultCache *cache() const { return cache_; }

    /**
     * Every job this scheduler has run, across all sweeps, in spec
     * order. Job names are sweep-qualified ("<sweep>/<job>") so the
     * same design point stays distinguishable when several figures
     * share it.
     */
    const std::vector<std::pair<Job, harness::RunResult>> &
    history() const
    {
        return history_;
    }

    /**
     * Timing of every job across all sweeps, in execution-completion
     * order per sweep. startSeconds values share the scheduler's epoch,
     * so exporters can lay all sweeps on one host timeline.
     */
    const std::vector<JobTiming> &timingHistory() const
    {
        return timingHistory_;
    }

  private:
    harness::RunResult runJob(const Job &job, JobTiming &timing);

    Options opts_;
    unsigned workers_ = 1;
    unsigned shards_ = 1;
    ResultCache *cache_ = nullptr;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::pair<Job, harness::RunResult>> history_;
    std::vector<JobTiming> timingHistory_;
};

} // namespace netcrafter::exp

#endif // NETCRAFTER_EXP_SCHEDULER_HH
