/**
 * @file
 * Translation Lookaside Buffer used at both levels (Table 2): per-CU L1
 * TLB (32-entry fully associative, 1-cycle) and per-GPU shared L2 TLB
 * (512-entry 8-way, 10-cycle), each with an MSHR file merging concurrent
 * misses to the same page.
 */

#ifndef NETCRAFTER_VM_TLB_HH
#define NETCRAFTER_VM_TLB_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/sim_object.hh"

namespace netcrafter::vm {

/** A completed translation: where the page lives. */
struct Translation
{
    GpuId owner = 0;
};

/** Configuration for one TLB. */
struct TlbParams
{
    std::uint32_t entries = 32;

    /** Ways; entries for fully-associative. */
    std::uint32_t assoc = 32;

    Tick lookupLatency = 1;
    std::size_t mshrEntries = 8;
};

/**
 * A TLB level. On a miss the request goes to the miss handler (the next
 * TLB level or the GMMU). The MSHR capacity bounds how many distinct
 * misses are outstanding *below* this TLB; further primary misses wait
 * in an internal queue, so callers are never refused and never poll.
 */
class Tlb : public sim::SimObject
{
  public:
    using Callback = std::function<void(Translation)>;

    /** Miss handler: resolve @p vpn, calling the callback when done. */
    using MissHandler = std::function<void(Addr vpn, Callback done)>;

    Tlb(sim::Engine &engine, std::string name, const TlbParams &params,
        MissHandler miss_handler);

    /** Translate the page of @p vpn; @p done fires when resolved. */
    void access(Addr vpn, Callback done);

    /** Install a translation (fills from below). */
    void insert(Addr vpn, Translation t);

    /** Probe without side effects (tests). */
    bool contains(Addr vpn) const;

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Primary misses that had to queue for an MSHR slot. */
    std::uint64_t mshrQueued() const { return mshrQueued_; }

  private:
    struct Way
    {
        Addr vpn = kAddrInvalid;
        Translation t;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t setOf(Addr vpn) const;
    Way *findWay(Addr vpn);
    const Way *findWay(Addr vpn) const;
    void startMiss(Addr vpn);
    void finishMiss(Addr vpn, Translation t);

    TlbParams params_;
    MissHandler missHandler_;
    std::uint32_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t useClock_ = 0;

    /** vpn -> callbacks waiting for that translation (merged misses). */
    std::unordered_map<Addr, std::vector<Callback>> pendingByVpn_;

    /** Primary misses waiting for one of the mshrEntries slots. */
    std::deque<Addr> queuedMisses_;
    std::size_t activeBelow_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t mshrQueued_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::vm

#endif // NETCRAFTER_VM_TLB_HH
