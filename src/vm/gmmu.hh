/**
 * @file
 * GPU Memory Management Unit (Section 2.3): a Page Walk Cache holding
 * upper-level (1-3) page table entries plus a pool of parallel page
 * table walkers. Depending on the PWC longest-prefix match a walk costs
 * 1 to 4 PTE fetches, each of which goes through the L2 cache of the GPU
 * owning that page-table page — possibly across the inter-cluster
 * network as PageTableReq/PageTableRsp packets.
 */

#ifndef NETCRAFTER_VM_GMMU_HH
#define NETCRAFTER_VM_GMMU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>

#include "src/sim/sim_object.hh"
#include "src/vm/page_table.hh"
#include "src/vm/tlb.hh"

namespace netcrafter::vm {

/** GMMU configuration (Table 2). */
struct GmmuParams
{
    std::uint32_t pwcEntries = 32;
    Tick pwcLatency = 10;
    std::uint32_t walkers = 16;
};

/** Small fully-associative LRU cache of upper-level PTEs. */
class PageWalkCache
{
  public:
    explicit PageWalkCache(std::uint32_t entries) : entries_(entries) {}

    /**
     * Deepest level in {1..3} whose entry for @p vaddr is cached such
     * that all shallower levels are implied resolved. Touches the
     * matching entry's recency. Returns 0 when nothing matches (full
     * walk needed).
     */
    int deepestMatch(Addr vaddr);

    /** Install the entry of @p level (1..3) covering @p vaddr. */
    void insert(int level, Addr vaddr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t lookups() const { return lookups_; }

  private:
    static Addr
    key(int level, Addr vaddr)
    {
        return (static_cast<Addr>(level) << 58) ^
               PageTable::prefix(level, vaddr);
    }

    std::uint32_t entries_;
    // LRU list front = most recent; map for O(1) lookup.
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t lookups_ = 0;
};

/** The GMMU: PWC + parallel walkers. */
class Gmmu : public sim::SimObject
{
  public:
    using Callback = std::function<void(Translation)>;

    /**
     * Fetches one PTE (a memory read of the line holding it) and calls
     * back when the data arrived; local or remote is the GPU system's
     * concern.
     */
    using PteFetchFn =
        std::function<void(const WalkStep &, std::function<void()>)>;

    Gmmu(sim::Engine &engine, std::string name, const GmmuParams &params,
         const PageTable &page_table, PteFetchFn fetch);

    /**
     * Start (or join) a walk for @p vpn. Walks beyond the walker count
     * queue; the upstream TLB MSHRs bound how many can be pending.
     */
    void walk(Addr vpn, Callback done);

    std::uint64_t walksStarted() const { return walksStarted_; }
    std::uint64_t pteFetches() const { return pteFetches_; }
    const PageWalkCache &pwc() const { return pwc_; }

    /** Mean PTE fetches per completed walk. */
    double
    meanWalkLength() const
    {
        return walksCompleted_
                   ? static_cast<double>(pteFetches_) / walksCompleted_
                   : 0.0;
    }

  private:
    void beginNextWalk();
    void runWalk(Addr vpn, int level);
    void finishWalk(Addr vpn);

    GmmuParams params_;
    const PageTable &pageTable_;
    PteFetchFn fetch_;
    PageWalkCache pwc_;

    std::unordered_map<Addr, std::vector<Callback>> waiters_;
    std::deque<Addr> queued_;
    std::uint32_t activeWalkers_ = 0;

    std::uint64_t walksStarted_ = 0;
    std::uint64_t walksCompleted_ = 0;
    std::uint64_t pteFetches_ = 0;
    std::uint16_t traceLane_ = 0;
};

} // namespace netcrafter::vm

#endif // NETCRAFTER_VM_GMMU_HH
