#include "src/vm/tlb.hh"

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::vm {

Tlb::Tlb(sim::Engine &engine, std::string name, const TlbParams &params,
         MissHandler miss_handler)
    : SimObject(engine, std::move(name)), params_(params),
      missHandler_(std::move(miss_handler)),
      numSets_(params.entries / params.assoc)
{
    NC_ASSERT(params_.assoc > 0 && params_.entries % params_.assoc == 0,
              "TLB entries must divide evenly into ways");
    NC_ASSERT(numSets_ > 0, "TLB must have at least one set");
    NC_ASSERT(missHandler_ != nullptr, "TLB needs a miss handler");
    ways_.resize(params_.entries);
    traceLane_ = obs::internLane(engine, this->name());
}

std::uint32_t
Tlb::setOf(Addr vpn) const
{
    return static_cast<std::uint32_t>(vpn % numSets_);
}

Tlb::Way *
Tlb::findWay(Addr vpn)
{
    const std::size_t base =
        static_cast<std::size_t>(setOf(vpn)) * params_.assoc;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.vpn == vpn)
            return &way;
    }
    return nullptr;
}

const Tlb::Way *
Tlb::findWay(Addr vpn) const
{
    return const_cast<Tlb *>(this)->findWay(vpn);
}

bool
Tlb::contains(Addr vpn) const
{
    return findWay(vpn) != nullptr;
}

void
Tlb::access(Addr vpn, Callback done)
{
    ++accesses_;
    obs::tracepoint(engine(), obs::TraceLevel::Full,
                    obs::TraceKind::PktStage, obs::TraceStage::TlbLookup,
                    traceLane_, vpn);
    if (Way *way = findWay(vpn)) {
        ++hits_;
        way->lastUse = ++useClock_;
        Translation t = way->t;
        schedule(params_.lookupLatency,
                 [done = std::move(done), t] { done(t); });
        return;
    }

    ++misses_;
    obs::tracepoint(engine(), obs::TraceLevel::Full,
                    obs::TraceKind::PktStage, obs::TraceStage::TlbMiss,
                    traceLane_, vpn);
    auto [it, primary] = pendingByVpn_.try_emplace(vpn);
    it->second.push_back(std::move(done));
    if (!primary)
        return; // merged onto the outstanding miss

    if (activeBelow_ < params_.mshrEntries) {
        ++activeBelow_;
        schedule(params_.lookupLatency, [this, vpn] { startMiss(vpn); });
    } else {
        // All MSHR slots busy: the primary miss waits its turn.
        ++mshrQueued_;
        queuedMisses_.push_back(vpn);
    }
}

void
Tlb::startMiss(Addr vpn)
{
    missHandler_(vpn,
                 [this, vpn](Translation t) { finishMiss(vpn, t); });
}

void
Tlb::finishMiss(Addr vpn, Translation t)
{
    insert(vpn, t);
    auto it = pendingByVpn_.find(vpn);
    NC_ASSERT(it != pendingByVpn_.end(), "miss finished with no waiters");
    auto waiters = std::move(it->second);
    pendingByVpn_.erase(it);

    NC_ASSERT(activeBelow_ > 0, "TLB MSHR underflow");
    --activeBelow_;
    if (!queuedMisses_.empty()) {
        const Addr next = queuedMisses_.front();
        queuedMisses_.pop_front();
        ++activeBelow_;
        schedule(1, [this, next] { startMiss(next); });
    }

    for (auto &done : waiters)
        done(t);
}

void
Tlb::insert(Addr vpn, Translation t)
{
    ++useClock_;
    if (Way *way = findWay(vpn)) {
        way->t = t;
        way->lastUse = useClock_;
        return;
    }
    const std::size_t base =
        static_cast<std::size_t>(setOf(vpn)) * params_.assoc;
    Way *victim = &ways_[base];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    victim->vpn = vpn;
    victim->t = t;
    victim->valid = true;
    victim->lastUse = useClock_;
}

} // namespace netcrafter::vm
