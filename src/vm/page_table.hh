/**
 * @file
 * Four-level radix page table with NUMA-aware placement (Section 2.3).
 * Data pages are placed on GPUs by LASP; each leaf PTE page (mapping a
 * 2 MB virtual region) is co-located with the first data page placed in
 * that region, mirroring Linux's NUMA-aware PTE placement.
 *
 * PTEs live at synthetic physical addresses inside a reserved region so
 * they are cached in the L2 like data (Section 2.3) and eight adjacent
 * PTEs share a cache line.
 */

#ifndef NETCRAFTER_VM_PAGE_TABLE_HH
#define NETCRAFTER_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "src/sim/types.hh"

namespace netcrafter::vm {

/** Levels of the radix tree: 1 (root) .. 4 (leaf). */
inline constexpr int kPageTableLevels = 4;

/** Base of the reserved synthetic PTE address region. */
inline constexpr Addr kPteRegionBase = 0xF000'0000'0000ull;

/** Bytes of one page table entry. */
inline constexpr std::uint32_t kPteBytes = 8;

/** One step of a page walk: where the PTE lives. */
struct WalkStep
{
    Addr pteAddr = 0;
    GpuId owner = 0;
};

/**
 * The shared page table of the unified virtual memory space. Also the
 * authority on data-page ownership (where LASP placed each page).
 */
class PageTable
{
  public:
    explicit PageTable(std::uint32_t num_gpus) : numGpus_(num_gpus) {}

    /**
     * Record that virtual page containing @p vaddr lives on @p owner.
     * The first placement in a 2 MB region pins that region's leaf PTE
     * page to the same GPU.
     */
    void place(Addr vaddr, GpuId owner);

    /** Owner GPU of the data page containing @p addr. */
    GpuId dataOwner(Addr addr) const;

    /** True when the page containing @p addr has been placed. */
    bool isPlaced(Addr addr) const;

    /**
     * The PTE access of @p level (1..4) for translating @p vaddr:
     * synthetic PTE address and the GPU that stores it.
     */
    WalkStep step(int level, Addr vaddr) const;

    /** Index prefix of @p vaddr at @p level (the PWC tag). */
    static Addr
    prefix(int level, Addr vaddr)
    {
        // Leaf (4) covers 4 KB -> shift 12; each level up adds 9 bits.
        const int shift = 12 + 9 * (kPageTableLevels - level);
        return vaddr >> shift;
    }

    /** Number of placed pages. */
    std::size_t placedPages() const { return pageOwner_.size(); }

    std::uint32_t numGpus() const { return numGpus_; }

  private:
    std::uint32_t numGpus_;

    /** virtual page number -> owner GPU. */
    std::unordered_map<Addr, GpuId> pageOwner_;

    /** 2MB-region index -> owner GPU of its leaf PTE page. */
    std::unordered_map<Addr, GpuId> ptePageOwner_;
};

} // namespace netcrafter::vm

#endif // NETCRAFTER_VM_PAGE_TABLE_HH
