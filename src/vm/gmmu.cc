#include "src/vm/gmmu.hh"

#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"

namespace netcrafter::vm {

int
PageWalkCache::deepestMatch(Addr vaddr)
{
    ++lookups_;
    for (int level = kPageTableLevels - 1; level >= 1; --level) {
        auto it = map_.find(key(level, vaddr));
        if (it != map_.end()) {
            ++hits_;
            // Refresh recency: a matching entry is hot.
            lru_.erase(it->second);
            lru_.push_front(it->first);
            it->second = lru_.begin();
            return level;
        }
    }
    return 0;
}

void
PageWalkCache::insert(int level, Addr vaddr)
{
    const Addr k = key(level, vaddr);
    auto it = map_.find(k);
    if (it != map_.end()) {
        lru_.erase(it->second);
        lru_.push_front(k);
        it->second = lru_.begin();
        return;
    }
    if (map_.size() >= entries_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(k);
    map_[k] = lru_.begin();
}

Gmmu::Gmmu(sim::Engine &engine, std::string name,
           const GmmuParams &params, const PageTable &page_table,
           PteFetchFn fetch)
    : SimObject(engine, std::move(name)), params_(params),
      pageTable_(page_table), fetch_(std::move(fetch)),
      pwc_(params.pwcEntries)
{
    NC_ASSERT(fetch_ != nullptr, "GMMU needs a PTE fetch path");
    traceLane_ = obs::internLane(engine, this->name());
}

void
Gmmu::walk(Addr vpn, Callback done)
{
    auto it = waiters_.find(vpn);
    if (it != waiters_.end()) {
        it->second.push_back(std::move(done));
        return;
    }
    waiters_[vpn].push_back(std::move(done));
    queued_.push_back(vpn);
    ++walksStarted_;
    obs::tracepoint(engine(), obs::TraceLevel::Links,
                    obs::TraceKind::PktStage, obs::TraceStage::WalkStart,
                    traceLane_, vpn);
    beginNextWalk();
}

void
Gmmu::beginNextWalk()
{
    if (activeWalkers_ >= params_.walkers || queued_.empty())
        return;
    const Addr vpn = queued_.front();
    queued_.pop_front();
    ++activeWalkers_;
    // PWC lookup determines where the walk starts.
    schedule(params_.pwcLatency, [this, vpn] {
        const Addr vaddr = vpn * kPageBytes;
        const int deepest = pwc_.deepestMatch(vaddr);
        runWalk(vpn, deepest + 1);
    });
}

void
Gmmu::runWalk(Addr vpn, int level)
{
    const Addr vaddr = vpn * kPageBytes;
    if (level > kPageTableLevels) {
        finishWalk(vpn);
        return;
    }
    ++pteFetches_;
    const WalkStep step = pageTable_.step(level, vaddr);
    fetch_(step, [this, vpn, level] {
        const Addr vaddr = vpn * kPageBytes;
        if (level < kPageTableLevels)
            pwc_.insert(level, vaddr);
        runWalk(vpn, level + 1);
    });
}

void
Gmmu::finishWalk(Addr vpn)
{
    ++walksCompleted_;
    obs::tracepoint(engine(), obs::TraceLevel::Links,
                    obs::TraceKind::PktStage, obs::TraceStage::WalkEnd,
                    traceLane_, vpn);
    Translation t;
    t.owner = pageTable_.dataOwner(vpn * kPageBytes);
    auto it = waiters_.find(vpn);
    NC_ASSERT(it != waiters_.end(), "walk finished with no waiters");
    auto waiters = std::move(it->second);
    waiters_.erase(it);
    NC_ASSERT(activeWalkers_ > 0, "walker underflow");
    --activeWalkers_;
    for (auto &done : waiters)
        done(t);
    beginNextWalk();
}

} // namespace netcrafter::vm
