#include "src/vm/page_table.hh"

#include "src/sim/logging.hh"

namespace netcrafter::vm {

void
PageTable::place(Addr vaddr, GpuId owner)
{
    NC_ASSERT(owner < numGpus_, "placement on unknown GPU ", owner);
    const Addr vpn = vaddr / kPageBytes;
    pageOwner_[vpn] = owner;
    // Leaf PTE page co-location: the page table page mapping this 2 MB
    // region goes where the region's first placed data page went.
    const Addr region = vaddr >> 21;
    ptePageOwner_.emplace(region, owner);
}

GpuId
PageTable::dataOwner(Addr addr) const
{
    const Addr vpn = addr / kPageBytes;
    auto it = pageOwner_.find(vpn);
    if (it != pageOwner_.end())
        return it->second;
    // Unplaced pages (e.g. scratch) interleave round-robin so nothing is
    // accidentally hot on GPU 0.
    return static_cast<GpuId>(vpn % numGpus_);
}

bool
PageTable::isPlaced(Addr addr) const
{
    return pageOwner_.find(addr / kPageBytes) != pageOwner_.end();
}

WalkStep
PageTable::step(int level, Addr vaddr) const
{
    NC_ASSERT(level >= 1 && level <= kPageTableLevels,
              "bad page table level ", level);
    const Addr pfx = prefix(level, vaddr);

    WalkStep s;
    // Synthetic, unique, 8B-spaced PTE addresses per (level, prefix);
    // eight neighbouring PTEs share a 64B line, giving page walks the
    // same L2 spatial locality they enjoy on real hardware.
    s.pteAddr = kPteRegionBase +
                (static_cast<Addr>(level) << 44) + pfx * kPteBytes;

    if (level == kPageTableLevels) {
        // Leaf PTE page: 512 PTEs cover one 2 MB region.
        const Addr region = vaddr >> 21;
        auto it = ptePageOwner_.find(region);
        s.owner = it != ptePageOwner_.end()
                      ? it->second
                      : static_cast<GpuId>(region % numGpus_);
    } else {
        // Upper-level table pages round-robin across GPUs; they are
        // almost always PWC hits, so their placement is a minor effect.
        s.owner = static_cast<GpuId>(pfx % numGpus_);
    }
    return s;
}

} // namespace netcrafter::vm
