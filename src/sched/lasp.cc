#include "src/sched/lasp.hh"

namespace netcrafter::sched {

void
placeBuffer(workloads::PlacementDirectory &placement, Addr base,
            std::uint64_t bytes, BufferPattern pattern,
            std::uint32_t num_gpus, GpuId shared_home)
{
    const std::uint64_t pages = divCeil(bytes, kPageBytes);
    const std::uint64_t pages_per_gpu =
        std::max<std::uint64_t>(1, divCeil(pages, num_gpus));
    for (std::uint64_t p = 0; p < pages; ++p) {
        const Addr va = base + p * kPageBytes;
        GpuId owner = shared_home;
        switch (pattern) {
          case BufferPattern::Chunked:
            owner = static_cast<GpuId>(
                std::min<std::uint64_t>(p / pages_per_gpu, num_gpus - 1));
            break;
          case BufferPattern::Interleaved:
            owner = static_cast<GpuId>(p % num_gpus);
            break;
          case BufferPattern::Shared:
            owner = shared_home;
            break;
        }
        placement.place(va, owner);
    }
}

GpuId
blockHome(std::uint32_t cta, std::uint32_t num_ctas,
          std::uint32_t num_gpus)
{
    const std::uint32_t per_gpu =
        std::max(1u, (num_ctas + num_gpus - 1) / num_gpus);
    const GpuId home = cta / per_gpu;
    return home >= num_gpus ? num_gpus - 1 : home;
}

} // namespace netcrafter::sched
