/**
 * @file
 * LASP-style locality-aware scheduling and placement (Khairy et al.,
 * adopted as the baseline in Section 2.2). Kernel data structures are
 * classified by access pattern; CTAs are block-scheduled onto GPUs and
 * the corresponding data pages placed locally.
 */

#ifndef NETCRAFTER_SCHED_LASP_HH
#define NETCRAFTER_SCHED_LASP_HH

#include <cstdint>

#include "src/sim/types.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::sched {

/** LASP buffer classification. */
enum class BufferPattern : std::uint8_t
{
    /**
     * Accessed by the CTAs that own the matching index range: place in
     * contiguous chunks aligned with the CTA block distribution.
     */
    Chunked,

    /** Accessed irregularly by all CTAs: interleave pages round-robin. */
    Interleaved,

    /** Small shared/broadcast structure: place on one GPU. */
    Shared,
};

/**
 * Place the pages of buffer [@p base, @p base + @p bytes) according to
 * @p pattern across @p num_gpus GPUs, registering with @p placement.
 */
void placeBuffer(workloads::PlacementDirectory &placement, Addr base,
                 std::uint64_t bytes, BufferPattern pattern,
                 std::uint32_t num_gpus, GpuId shared_home = 0);

/**
 * Block-distributed CTA scheduling: CTA @p cta of @p num_ctas goes to
 * its matching GPU chunk (the default Kernel::ctaHome policy).
 */
GpuId blockHome(std::uint32_t cta, std::uint32_t num_ctas,
                std::uint32_t num_gpus);

} // namespace netcrafter::sched

#endif // NETCRAFTER_SCHED_LASP_HH
