/**
 * @file
 * The assembled non-uniform bandwidth multi-GPU system (Figure 2): GPUs
 * (CUs + L1s + TLBs + GMMU + L2 + DRAM) on a hierarchical interconnect,
 * with unified virtual memory, LASP placement, and — when enabled — the
 * NetCrafter controllers inside the cluster switches.
 *
 * This is the library's main entry point: construct with a
 * SystemConfig, run() a Workload, then read the statistics accessors.
 *
 * Execution is optionally sharded: with shards > 1 the clusters are
 * partitioned round-robin onto shard engines (sim::shardOfCluster) and
 * advance in conservative barrier-synchronized quanta (see
 * sim/sharded_engine.hh). Everything a GPU owns — chip, RDMA endpoint,
 * outstanding-request table, statistics, priority RNG — lives on its
 * cluster's shard, so the only cross-shard interactions are the
 * latency-bearing inter-cluster wire channels. Results are bit-identical
 * for every shard count; the shard count is an execution detail, not
 * part of the configuration digest.
 */

#ifndef NETCRAFTER_GPU_SYSTEM_HH
#define NETCRAFTER_GPU_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/config/system_config.hh"
#include "src/flow/fidelity.hh"
#include "src/flow/fidelity_controller.hh"
#include "src/gpu/compute_unit.hh"
#include "src/mem/dram.hh"
#include "src/mem/l2_cache.hh"
#include "src/noc/network.hh"
#include "src/obs/trace.hh"
#include "src/sim/engine.hh"
#include "src/sim/sharded_engine.hh"
#include "src/stats/stats.hh"
#include "src/vm/gmmu.hh"
#include "src/vm/page_table.hh"
#include "src/vm/tlb.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::obs {
class TraceSink;
} // namespace netcrafter::obs

namespace netcrafter::gpu {

/** A complete multi-GPU system. */
class MultiGpuSystem : public workloads::PlacementDirectory
{
  public:
    /**
     * Build the system. @p shards > 1 partitions the clusters onto that
     * many engine shards; 0 means "caller did not think about it" and
     * runs serially, while a count exceeding numClusters is a
     * configuration error (it would leave shards with no components)
     * and aborts with a clear message. @p exec controls how host
     * threads drive the shards (thread count, work stealing) — an
     * execution detail. Simulation results are identical for every
     * shard count and every execution policy.
     *
     * @p fidelity selects the execution fidelity (src/flow/): Cycle is
     * the classic flit-level path and the default; Flow and Hybrid
     * fuse steady-state network round trips into single analytic
     * events and require shards == 1 (fatal otherwise). Fidelity is an
     * execution property like the shard count: it is not part of the
     * configuration digest, but results may differ slightly from
     * Cycle, so experiment caches key on it separately.
     *
     * @p sync selects the barrier protocol (sim::SyncPolicy): Strict
     * (the default) keeps conservative windows and bit-identity across
     * shard counts; Relaxed lets shards free-run up to the policy's
     * skew bound past the slowest shard, trading bounded timing
     * displacement on cross-shard arrivals for far fewer barrier
     * rendezvous. Like fidelity, it is an accuracy knob: not part of
     * the configuration digest, keyed separately by experiment caches,
     * and audited by tools/audit-skew.
     */
    explicit MultiGpuSystem(const config::SystemConfig &cfg,
                            unsigned shards = 1,
                            const obs::TraceOptions &trace = {},
                            const sim::ExecPolicy &exec = {},
                            flow::Fidelity fidelity =
                                flow::Fidelity::Cycle,
                            const sim::SyncPolicy &sync = {});
    ~MultiGpuSystem() override;

    /**
     * Execute @p workload to completion (all kernels, barrier between
     * them). @p scale multiplies problem sizes; @p max_cycles aborts a
     * hung simulation.
     */
    void run(workloads::Workload &workload, double scale = 1.0,
             Tick max_cycles = 2'000'000'000ull);

    /**
     * Like run(), but a kernel exceeding @p max_cycles returns the
     * non-Drained status instead of aborting the process. An aborted
     * simulation leaves events in flight; auditTeardown() can census
     * them (and tests do).
     */
    sim::RunStatus runFor(workloads::Workload &workload,
                          double scale = 1.0,
                          Tick max_cycles = 2'000'000'000ull);

    /**
     * Walk shard event queues and cross-shard ports and NC_PANIC on
     * anything still pending — the leak census run by tests and, when
     * NETCRAFTER_TEARDOWN_CENSUS is set, by the destructor. Only
     * meaningful after a run; a no-op for serial (1-shard) systems.
     */
    void auditTeardown() const { engine_.auditTeardown(); }

    /** Trace sink collecting this system's records (null if disabled). */
    obs::TraceSink *traceSink() const { return traceSink_.get(); }

    // PlacementDirectory -----------------------------------------------
    void place(Addr vaddr, GpuId owner) override;

    // Results ------------------------------------------------------------
    /** Total execution time in cycles. */
    Tick cycles() const { return engine_.now(); }

    /** Wavefront memory instructions executed, all GPUs. */
    std::uint64_t totalInstructions() const;

    /** Per-thread instructions (wavefront instructions x 64 lanes). */
    std::uint64_t
    threadInstructions() const
    {
        return totalInstructions() * kWavefrontSize;
    }

    std::uint64_t l1ReadAccesses() const;
    std::uint64_t l1ReadMisses() const;

    /** L1 read misses per kilo wavefront instruction (Figures 16/17). */
    double l1Mpki() const;

    /**
     * Latency of inter-cluster remote reads, cycles (Figures 5/15).
     * Tracked per requester GPU and merged in GPU order, so the value
     * is identical for every shard count.
     */
    stats::Average interClusterReadLatency() const;

    /**
     * Bytes-needed census of inter-cluster read requests, bucketed
     * <=16 / <=32 / <=48 / <64 / 64 (Figure 7).
     */
    stats::Distribution remoteReadBytesNeeded() const;

    const noc::Network &network() const { return *network_; }
    const vm::PageTable &pageTable() const { return pageTable_; }
    const config::SystemConfig &cfg() const { return cfg_; }

    /** Execution fidelity this system was built with. */
    flow::Fidelity fidelity() const { return fidelity_; }

    /** Flow-lane controller (nullptr at cycle fidelity). */
    const flow::FidelityController *flowController() const
    {
        return network_->flowController();
    }

    /** The sharded engine complex driving the system. */
    sim::ShardedEngine &engines() { return engine_; }
    const sim::ShardedEngine &engines() const { return engine_; }

    /** Shard 0's engine (the only shard when running serially). */
    sim::Engine &engine() { return engine_.shard(0); }

    /**
     * The engine of @p g's cluster's shard. Events that touch GPU
     * @p g's state (serve arrivals, for one) must be scheduled here so
     * sharded execution stays race-free and bit-identical.
     */
    sim::Engine &engineFor(GpuId g) { return engineOf(g); }

    // Serving -----------------------------------------------------------
    /**
     * Queue one serving-request wavefront on @p g. Must be called from
     * @p g's shard (an event on engineFor(g)) or outside a run; the
     * wave's serveTag must be non-zero so its retirement reaches the
     * retire hook.
     */
    void dispatchServeWave(GpuId g, const WaveDesc &desc);

    /**
     * Install @p hook, called as hook(gpu, desc) on the GPU's shard
     * whenever one of its wavefronts retires. The serving session uses
     * this to close requests; pass nullptr to remove.
     */
    void
    setWaveRetireHook(std::function<void(GpuId, const WaveDesc &)> hook)
    {
        waveRetireHook_ = std::move(hook);
    }

    /** Shards executing this system (1 = classic serial simulation). */
    unsigned numShards() const { return engine_.numShards(); }

    /** Aggregated GMMU walk count across GPUs. */
    std::uint64_t pageWalks() const;

    /** Mean PTE fetches per walk across GPUs. */
    double meanWalkLength() const;

    /** Remote (cross-GPU) read requests issued. */
    std::uint64_t remoteReads() const;

    /** Local L2-satisfied read requests. */
    std::uint64_t localReads() const;

    /** Requests still awaiting a response (0 after a completed run). */
    std::size_t outstandingRequests() const;

    /**
     * Export every statistic the system tracks into a Registry (names
     * are hierarchical, e.g. "gpu0.l1.readMisses"). Machine-readable
     * exporters and dumpStats both feed from this.
     */
    stats::Registry collectStats() const;

    /** collectStats() dumped in the flat text format. */
    void dumpStats(std::ostream &os) const;

  private:
    struct GpuChip
    {
        std::unique_ptr<mem::Dram> dram;
        std::unique_ptr<mem::L2Cache> l2;
        std::unique_ptr<vm::Tlb> l2Tlb;
        std::unique_ptr<vm::Gmmu> gmmu;
        std::vector<std::unique_ptr<ComputeUnit>> cus;
        std::deque<WaveDesc> pendingWaves;
    };

    /**
     * Per-GPU bookkeeping that the GPU's shard thread owns exclusively:
     * the outstanding-request table (responses always return to the
     * requester's shard), remote-read statistics, and the priority RNG.
     * Partitioning this state per GPU — in serial mode too — is what
     * makes sharded execution both race-free and bit-identical.
     */
    struct GpuLocal
    {
        /** request packet id -> response continuation. */
        std::unordered_map<std::uint64_t,
                           std::function<void(const noc::Packet &)>>
            outstanding;

        stats::Average interReadLatency;
        stats::Distribution remoteReadBytes{
            std::vector<double>{16, 32, 48, 63}};
        std::uint64_t remoteReads = 0;
        std::uint64_t localReads = 0;
        Pcg32 priorityRng;
        std::uint16_t traceLane = 0;
    };

    /** The engine of @p g's cluster's shard. */
    sim::Engine &engineOf(GpuId g)
    {
        return engine_.shard(sim::shardOfCluster(
            cfg_.clusterOf(g), engine_.numShards()));
    }
    const sim::Engine &engineOf(GpuId g) const
    {
        return engine_.shard(sim::shardOfCluster(
            cfg_.clusterOf(g), engine_.numShards()));
    }

    void buildChips();
    void markPriority(noc::Packet &pkt, GpuId requester);
    void handleRemoteRequest(GpuId owner, noc::PacketPtr req);
    void handleResponse(noc::PacketPtr rsp);

    /** Build the response packet answering @p req (owner side). */
    noc::PacketPtr buildResponse(GpuId owner, const noc::Packet &req);

    /**
     * Flow-lane fused round trip: request transit, analytic owner-side
     * L2 service, response transit, one completion event delivering to
     * handleResponse. The caller must have registered the request in
     * its outstanding table first. Returns false — leaving @p pkt
     * untouched — at cycle fidelity or when the request's lane is
     * escalated (Hybrid warmup / instability); the caller then uses
     * the flit path.
     */
    bool tryFusedRoundTrip(GpuId g, noc::PacketPtr &pkt);

    /**
     * Route a response built on the owner's side of an *escalated*
     * (flit-path) request back through the flow lane when its reverse
     * lane qualifies. Returns false — @p rsp untouched — when the
     * response must ride the flit path too.
     */
    bool trySendResponseOnFlowLane(noc::PacketPtr &rsp);
    void l1Fill(GpuId g, mem::FillRequest req);
    void fetchPte(GpuId g, const vm::WalkStep &step,
                  std::function<void()> done);
    mem::SectorMask fullL1Mask() const;
    mem::SectorMask maskForRange(std::uint32_t offset,
                                 std::uint32_t bytes) const;
    void dispatchKernel(const workloads::Kernel &kernel,
                        std::uint64_t kernel_seed);
    void refillCus(GpuId g);

    static unsigned validateShards(const config::SystemConfig &cfg,
                                   unsigned shards);

    config::SystemConfig cfg_;
    flow::Fidelity fidelity_ = flow::Fidelity::Cycle;

    /**
     * Declared before every component so it outlives them all; the
     * worker threads only join in its destructor, by which point all
     * pooled objects have drained back to their owning arenas.
     */
    sim::ShardedEngine engine_;

    /**
     * Owns the per-shard trace buffers the engines point at. Destroyed
     * before engine_, which is safe: worker threads only append inside
     * runWindow(), and no component traces from its destructor.
     */
    std::unique_ptr<obs::TraceSink> traceSink_;

    vm::PageTable pageTable_;
    std::unique_ptr<noc::Network> network_;
    std::vector<GpuChip> chips_;
    std::vector<GpuLocal> gpuLocal_;

    /**
     * Invoked (from the retiring GPU's shard) on every wavefront
     * retirement. Set once before a run and cleared after it, never
     * mutated while shards execute.
     */
    std::function<void(GpuId, const WaveDesc &)> waveRetireHook_;
};

} // namespace netcrafter::gpu

#endif // NETCRAFTER_GPU_SYSTEM_HH
