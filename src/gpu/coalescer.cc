#include "src/gpu/coalescer.hh"

#include <algorithm>
#include <unordered_map>

namespace netcrafter::gpu {

std::vector<CoalescedAccess>
coalesce(const workloads::Instruction &instr)
{
    std::vector<CoalescedAccess> out;
    out.reserve(8);
    std::unordered_map<Addr, std::size_t> index;
    for (Addr addr : instr.addrs) {
        if (addr == kAddrInvalid)
            continue;
        const Addr line = lineAddr(addr);
        const std::uint32_t first =
            static_cast<std::uint32_t>(addr - line);
        std::uint32_t last = first + instr.elemBytes - 1;
        // An element straddling the line boundary clamps to this line;
        // a second access for the spill-over would be negligible and the
        // generators avoid straddles anyway.
        last = std::min(last, kCacheLineBytes - 1);

        auto [it, inserted] = index.try_emplace(line, out.size());
        if (inserted) {
            out.push_back(CoalescedAccess{line, first, last - first + 1,
                                          instr.isWrite});
        } else {
            CoalescedAccess &a = out[it->second];
            const std::uint32_t lo = std::min(a.offset, first);
            const std::uint32_t hi = std::max(a.offset + a.bytes - 1,
                                              last);
            a.offset = lo;
            a.bytes = hi - lo + 1;
        }
    }
    return out;
}

} // namespace netcrafter::gpu
