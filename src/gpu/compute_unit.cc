#include "src/gpu/compute_unit.hh"

#include <map>

#include "src/sim/logging.hh"

namespace netcrafter::gpu {

ComputeUnit::ComputeUnit(sim::Engine &engine, std::string name,
                         const CuParams &params,
                         mem::L1Cache::FillFn fill,
                         vm::Tlb::MissHandler tlb_miss,
                         std::function<void(const WaveDesc &)> wave_done)
    : SimObject(engine, std::move(name)), params_(params),
      waveDone_(std::move(wave_done))
{
    l1_ = std::make_unique<mem::L1Cache>(engine, this->name() + ".l1",
                                         params_.l1, std::move(fill));
    l1Tlb_ = std::make_unique<vm::Tlb>(engine, this->name() + ".l1tlb",
                                       params_.l1Tlb,
                                       std::move(tlb_miss));
    if (params_.wakeOnL1Unblock) {
        l1_->setUnblockHook([this] {
            if (stalled_) {
                stalled_ = false;
                scheduleDispatch();
            }
        });
    }
}

void
ComputeUnit::startWavefront(const WaveDesc &desc)
{
    NC_ASSERT(hasFreeSlot(), name(), ": no free wavefront slot");
    NC_ASSERT(desc.kernel != nullptr, "wavefront without kernel");
    waves_.emplace_back(desc);
    WaveState *wave = &waves_.back();
    // Stagger wavefront starts slightly so they do not lockstep.
    schedule(1 + (waves_.size() % 4), [this, wave] {
        startInstruction(wave);
    });
}

void
ComputeUnit::startInstruction(WaveState *wave)
{
    workloads::Instruction instr;
    const bool has = wave->desc.kernel->generate(
        wave->desc.cta, wave->desc.wave, wave->nextInstr, wave->rng,
        instr);
    if (!has) {
        retireWave(wave);
        return;
    }
    ++wave->nextInstr;
    ++instructions_;

    auto accesses = coalesce(instr);
    if (accesses.empty()) {
        // A pure-compute step: just burn the delay.
        schedule(std::max<Tick>(1, instr.computeDelay),
                 [this, wave] { startInstruction(wave); });
        return;
    }

    wave->computeDelay = instr.computeDelay;
    wave->pendingLines = static_cast<std::uint32_t>(accesses.size());

    // Group the accesses by virtual page; each distinct page needs one
    // translation before its lines can be dispatched.
    std::map<Addr, std::vector<CoalescedAccess>> by_page;
    for (const auto &a : accesses)
        by_page[a.line / kPageBytes].push_back(a);

    wave->pendingTranslations =
        static_cast<std::uint32_t>(by_page.size());
    for (auto &[vpn, page_accesses] : by_page)
        issueTranslation(wave, vpn, std::move(page_accesses));
}

void
ComputeUnit::issueTranslation(WaveState *wave, Addr vpn,
                              std::vector<CoalescedAccess> accesses)
{
    l1Tlb_->access(vpn, [this, wave, accesses = std::move(accesses)](
                            vm::Translation) {
        NC_ASSERT(wave->pendingTranslations > 0,
                  "translation underflow");
        --wave->pendingTranslations;
        enqueueLines(wave, accesses);
    });
}

void
ComputeUnit::enqueueLines(WaveState *wave,
                          const std::vector<CoalescedAccess> &accesses)
{
    for (const auto &a : accesses)
        dispatchQueue_.push_back(PendingLine{wave, a});
    scheduleDispatch();
}

void
ComputeUnit::scheduleDispatch()
{
    if (dispatchScheduled_ || dispatchQueue_.empty())
        return;
    dispatchScheduled_ = true;
    schedule(1, [this] { dispatchCycle(); });
}

void
ComputeUnit::dispatchCycle()
{
    dispatchScheduled_ = false;
    std::uint32_t issued = 0;
    while (issued < params_.issueWidth && !dispatchQueue_.empty()) {
        PendingLine &pl = dispatchQueue_.front();
        WaveState *wave = pl.wave;
        const CoalescedAccess a = pl.access;
        bool accepted;
        if (a.isWrite) {
            accepted = l1_->access(a.line, a.offset, a.bytes, true,
                                   nullptr);
            if (accepted) {
                // Writes complete for the wavefront at acceptance; the
                // write-through ack only recycles the tracking slot.
                dispatchQueue_.pop_front();
                ++issued;
                lineDone(wave);
            }
        } else {
            accepted = l1_->access(a.line, a.offset, a.bytes, false,
                                   [this, wave] { lineDone(wave); });
            if (accepted) {
                dispatchQueue_.pop_front();
                ++issued;
            }
        }
        if (!accepted) {
            if (params_.wakeOnL1Unblock) {
                stalled_ = true;
                return; // woken by the L1 unblock hook
            }
            break; // L1 MSHRs full: stall the issue port this cycle
        }
    }
    scheduleDispatch();
}

void
ComputeUnit::lineDone(WaveState *wave)
{
    NC_ASSERT(wave->pendingLines > 0, "line completion underflow");
    --wave->pendingLines;
    maybeFinishInstruction(wave);
}

void
ComputeUnit::maybeFinishInstruction(WaveState *wave)
{
    if (wave->pendingLines != 0 || wave->pendingTranslations != 0)
        return;
    schedule(std::max<Tick>(1, wave->computeDelay),
             [this, wave] { startInstruction(wave); });
}

void
ComputeUnit::retireWave(WaveState *wave)
{
    for (auto it = waves_.begin(); it != waves_.end(); ++it) {
        if (&*it == wave) {
            // Copy out the descriptor before erasing: the callback
            // needs it (serve retirement) and the state dies here.
            const WaveDesc desc = it->desc;
            waves_.erase(it);
            if (waveDone_)
                waveDone_(desc);
            return;
        }
    }
    NC_PANIC(name(), ": retired wavefront not resident");
}

} // namespace netcrafter::gpu
