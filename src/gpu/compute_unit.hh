/**
 * @file
 * Compute Unit model (Section 2.1): executes resident wavefronts'
 * memory-instruction streams. Each instruction is coalesced, its pages
 * translated through the per-CU L1 TLB, and its line accesses dispatched
 * to the per-CU L1 vector cache at the CU's issue rate. Compute between
 * memory instructions is abstracted as a per-instruction delay; latency
 * hiding comes from interleaving the resident wavefronts.
 */

#ifndef NETCRAFTER_GPU_COMPUTE_UNIT_HH
#define NETCRAFTER_GPU_COMPUTE_UNIT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>

#include "src/gpu/coalescer.hh"
#include "src/mem/l1_cache.hh"
#include "src/sim/sim_object.hh"
#include "src/vm/tlb.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::gpu {

/** A wavefront handed to a CU for execution. */
struct WaveDesc
{
    const workloads::Kernel *kernel = nullptr;
    std::uint32_t cta = 0;
    std::uint32_t wave = 0;

    /** Seed from which the wavefront's private rng stream derives. */
    std::uint64_t seed = 0;

    /**
     * Serving-request id + 1 when this wave is an open-loop request
     * (see serve/session.hh); 0 for ordinary closed-loop kernel waves.
     */
    std::uint64_t serveTag = 0;
};

/** Static configuration of one CU. */
struct CuParams
{
    mem::L1Params l1;
    vm::TlbParams l1Tlb;
    std::uint32_t issueWidth = 1;
    std::uint32_t maxResidentWaves = 8;

    /**
     * Event-driven issue-port stalls: instead of re-polling the L1
     * every cycle while its MSHR file is full, park the dispatch loop
     * and let the L1's unblock hook wake it. Set by the GPU system at
     * flow/hybrid fidelity, where the polling events would dominate
     * the fast path; cycle fidelity keeps the classic per-cycle retry
     * so its event stream stays bit-identical.
     */
    bool wakeOnL1Unblock = false;
};

/** Per-CU compute model. */
class ComputeUnit : public sim::SimObject
{
  public:
    /**
     * @param fill L1 miss path (to local L2 or remote GPU).
     * @param tlb_miss L1 TLB miss path (to the shared L2 TLB).
     * @param wave_done called whenever a resident wavefront retires
     *        (with that wave's descriptor), letting the dispatcher
     *        refill the slot and the serving layer close requests.
     */
    ComputeUnit(sim::Engine &engine, std::string name,
                const CuParams &params, mem::L1Cache::FillFn fill,
                vm::Tlb::MissHandler tlb_miss,
                std::function<void(const WaveDesc &)> wave_done);

    /** True when another wavefront can be made resident. */
    bool
    hasFreeSlot() const
    {
        return waves_.size() < params_.maxResidentWaves;
    }

    /** Number of currently resident wavefronts. */
    std::size_t residentWaves() const { return waves_.size(); }

    /** Begin executing @p desc; requires hasFreeSlot(). */
    void startWavefront(const WaveDesc &desc);

    /** Wavefront memory instructions executed. */
    std::uint64_t instructions() const { return instructions_; }

    const mem::L1Cache &l1() const { return *l1_; }
    const vm::Tlb &l1Tlb() const { return *l1Tlb_; }

  private:
    struct WaveState
    {
        WaveDesc desc;
        Pcg32 rng;
        std::uint32_t nextInstr = 0;

        /** Accesses of the in-flight instruction, grouped by state. */
        std::uint32_t pendingTranslations = 0;
        std::uint32_t pendingLines = 0;
        std::uint32_t computeDelay = 0;

        explicit WaveState(const WaveDesc &d)
            : desc(d), rng(d.seed, (static_cast<std::uint64_t>(d.cta)
                                    << 20) ^ d.wave)
        {}
    };

    /** One translated line access awaiting dispatch to the L1. */
    struct PendingLine
    {
        WaveState *wave;
        CoalescedAccess access;
    };

    void startInstruction(WaveState *wave);
    void issueTranslation(WaveState *wave, Addr vpn,
                          std::vector<CoalescedAccess> accesses);
    void enqueueLines(WaveState *wave,
                      const std::vector<CoalescedAccess> &accesses);
    void lineDone(WaveState *wave);
    void maybeFinishInstruction(WaveState *wave);
    void retireWave(WaveState *wave);
    void scheduleDispatch();
    void dispatchCycle();

    CuParams params_;
    std::unique_ptr<mem::L1Cache> l1_;
    std::unique_ptr<vm::Tlb> l1Tlb_;
    std::function<void(const WaveDesc &)> waveDone_;

    std::list<WaveState> waves_;
    std::deque<PendingLine> dispatchQueue_;
    bool dispatchScheduled_ = false;

    /** Parked on a full L1 awaiting the unblock hook (wakeOnL1Unblock). */
    bool stalled_ = false;

    std::uint64_t instructions_ = 0;
};

} // namespace netcrafter::gpu

#endif // NETCRAFTER_GPU_COMPUTE_UNIT_HH
