#include "src/gpu/system.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "src/obs/telemetry.hh"
#include "src/obs/trace_buffer.hh"
#include "src/sim/logging.hh"
#include "src/sim/pool.hh"
#include "src/sim/small_fn.hh"

namespace netcrafter::gpu {

unsigned
MultiGpuSystem::validateShards(const config::SystemConfig &cfg,
                               unsigned shards)
{
    // Zero means "caller did not think about it" and runs serially.
    // More shards than clusters would leave engines with no components
    // and silently clamping used to hide topology/shard mismatches in
    // sweep scripts — reject loudly instead.
    if (shards > cfg.numClusters) {
        NC_FATAL("shards=", shards, " exceeds the topology's ",
                 cfg.numClusters, " clusters; shards partition whole "
                 "clusters, so at most numClusters shards are "
                 "meaningful — lower the shard count or grow the "
                 "topology");
    }
    return std::max(shards, 1u);
}

MultiGpuSystem::MultiGpuSystem(const config::SystemConfig &cfg,
                               unsigned shards,
                               const obs::TraceOptions &trace,
                               const sim::ExecPolicy &exec,
                               flow::Fidelity fidelity,
                               const sim::SyncPolicy &sync)
    : cfg_(cfg), fidelity_(fidelity),
      engine_(validateShards(cfg, shards), exec),
      pageTable_(cfg.numGpus())
{
    cfg_.validate();
    engine_.setSyncPolicy(sync);
    if (fidelity_ != flow::Fidelity::Cycle && engine_.numShards() > 1) {
        NC_FATAL("fidelity=", flow::fidelityName(fidelity_),
                 " requires a serial system; the flow lane schedules "
                 "fused completions across clusters, which conservative "
                 "shard barriers cannot order — run with shards=1 or "
                 "fidelity=cycle");
    }
    noc::resetPacketIds();
    if (trace.enabled()) {
        // The sink must exist before any component constructs: lanes
        // are interned (and engine trace pointers installed) so the
        // builders below see tracing already live.
        traceSink_ = std::make_unique<obs::TraceSink>(
            trace, engine_.numShards());
        for (unsigned s = 0; s < engine_.numShards(); ++s) {
            engine_.shard(s).setTrace(traceSink_.get(),
                                      &traceSink_->buffer(s));
        }
        engine_.setHostTimelineEnabled(true);
    }
    if (fidelity_ == flow::Fidelity::Cycle) {
        network_ = std::make_unique<noc::Network>(engine_, cfg_);
    } else {
        network_ = std::make_unique<noc::Network>(engine_.shard(0),
                                                  cfg_, fidelity_);
    }
    buildChips();

    // Live telemetry: arm the host-time self-profiler (phase timers
    // feed RunResult columns, heartbeats, and the host-trace counter
    // tracks) and expose the progress board + flight recorder to the
    // background sampler. Registration is a no-op when telemetry is
    // not running; everything here is host-side observation only.
    engine_.setProfilingEnabled(obs::profilingArmed(trace.enabled()));
    obs::Telemetry::instance().registerRun(
        &engine_.progressBoard(),
        [this](std::ostream &os) { engine_.dumpFlightRecord(os); });
}

MultiGpuSystem::~MultiGpuSystem()
{
    // Unregister before any member is torn down: the sampler must not
    // read a board (or dump a flight record) mid-destruction.
    obs::Telemetry::instance().unregisterRun(&engine_.progressBoard());

    // Opt-in leak census for CI and tests: abandoning a run must not
    // leave events or cross-shard exports behind.
    static const bool census =
        std::getenv("NETCRAFTER_TEARDOWN_CENSUS") != nullptr;
    if (census)
        auditTeardown();
}

void
MultiGpuSystem::buildChips()
{
    const std::uint32_t num_gpus = cfg_.numGpus();
    chips_.resize(num_gpus);
    gpuLocal_.resize(num_gpus);
    for (GpuId g = 0; g < num_gpus; ++g) {
        GpuChip &chip = chips_[g];
        sim::Engine &engine = engineOf(g);
        const std::string prefix = "gpu" + std::to_string(g);

        // Per-GPU stream so the draw sequence each GPU sees does not
        // depend on how requests from other GPUs interleave with its
        // own — the precondition for shard-count-independent results.
        gpuLocal_[g].priorityRng = Pcg32(
            cfg_.seed ^ 0x9e3779b97f4a7c15ull,
            0xda3e39cb94b95bdbull + 2 * static_cast<std::uint64_t>(g));
        gpuLocal_[g].traceLane =
            obs::internLane(engine, prefix + ".mem");

        chip.dram = std::make_unique<mem::Dram>(
            engine, prefix + ".dram", cfg_.dramLatency,
            cfg_.dramBytesPerCycle);

        mem::L2Params l2p;
        l2p.sizeBytes = cfg_.l2BytesPerGpu;
        l2p.assoc = cfg_.l2Assoc;
        l2p.banks = cfg_.l2Banks;
        l2p.lookupLatency = cfg_.l2Latency;
        l2p.mshrEntries = cfg_.l2MshrEntries;
        chip.l2 = std::make_unique<mem::L2Cache>(engine, prefix + ".l2",
                                                 l2p, *chip.dram);

        vm::GmmuParams gmmu_params;
        gmmu_params.pwcEntries = cfg_.pwcEntries;
        gmmu_params.pwcLatency = cfg_.pwcLatency;
        gmmu_params.walkers = cfg_.pageWalkers;
        chip.gmmu = std::make_unique<vm::Gmmu>(
            engine, prefix + ".gmmu", gmmu_params, pageTable_,
            [this, g](const vm::WalkStep &step,
                      std::function<void()> done) {
                fetchPte(g, step, std::move(done));
            });

        vm::TlbParams l2tlb_params;
        l2tlb_params.entries = cfg_.l2TlbEntries;
        l2tlb_params.assoc = cfg_.l2TlbAssoc;
        l2tlb_params.lookupLatency = cfg_.l2TlbLatency;
        l2tlb_params.mshrEntries = cfg_.l2TlbMshrEntries;
        chip.l2Tlb = std::make_unique<vm::Tlb>(
            engine, prefix + ".l2tlb", l2tlb_params,
            [this, g](Addr vpn, vm::Tlb::Callback done) {
                chips_[g].gmmu->walk(vpn, std::move(done));
            });

        CuParams cu_params;
        cu_params.l1.sizeBytes = cfg_.l1Bytes;
        cu_params.l1.assoc = cfg_.l1Assoc;
        cu_params.l1.lookupLatency = cfg_.l1Latency;
        cu_params.l1.mshrEntries = cfg_.l1MshrEntries;
        cu_params.l1.sectorBytes =
            cfg_.l1FillMode == config::L1FillMode::FullLine
                ? kCacheLineBytes
                : cfg_.netcrafter.trimGranularity;
        cu_params.l1Tlb.entries = cfg_.l1TlbEntries;
        cu_params.l1Tlb.assoc = cfg_.l1TlbEntries; // fully associative
        cu_params.l1Tlb.lookupLatency = cfg_.l1TlbLatency;
        cu_params.l1Tlb.mshrEntries = cfg_.l1TlbMshrEntries;
        cu_params.issueWidth = cfg_.cuIssueWidth;
        cu_params.maxResidentWaves = cfg_.maxWavesPerCu;
        // At flow/hybrid fidelity the per-cycle L1 retry polling would
        // dominate the fused fast path; park the issue port instead.
        cu_params.wakeOnL1Unblock =
            fidelity_ != flow::Fidelity::Cycle;

        chip.cus.reserve(cfg_.cusPerGpu);
        for (std::uint32_t c = 0; c < cfg_.cusPerGpu; ++c) {
            chip.cus.push_back(std::make_unique<ComputeUnit>(
                engine, prefix + ".cu" + std::to_string(c), cu_params,
                [this, g](mem::FillRequest req) {
                    l1Fill(g, std::move(req));
                },
                [this, g](Addr vpn, vm::Tlb::Callback done) {
                    chips_[g].l2Tlb->access(vpn, std::move(done));
                },
                [this, g](const WaveDesc &desc) {
                    if (waveRetireHook_)
                        waveRetireHook_(g, desc);
                    refillCus(g);
                }));
        }

        network_->rdma(g).setRequestHandler(
            [this, g](noc::PacketPtr req) {
                handleRemoteRequest(g, std::move(req));
            });
        network_->rdma(g).setResponseHandler(
            [this](noc::PacketPtr rsp) { handleResponse(std::move(rsp)); });
    }
}

void
MultiGpuSystem::place(Addr vaddr, GpuId owner)
{
    pageTable_.place(vaddr, owner);
}

void
MultiGpuSystem::markPriority(noc::Packet &pkt, GpuId requester)
{
    // The separate PTW partition (Figure 13) is part of NetCrafter; a
    // bare characterization controller (forceController with every
    // mechanism off, the Figure 8 reference) queues PTW flits with data
    // like the baseline switch would.
    const bool bare_controller =
        cfg_.netcrafter.forceController &&
        !cfg_.netcrafter.stitching && !cfg_.netcrafter.trimming &&
        cfg_.netcrafter.sequencing == config::SequencingMode::Off;
    switch (cfg_.netcrafter.sequencing) {
      case config::SequencingMode::Off:
      case config::SequencingMode::PrioritizePtw:
        // PTW traffic is the latency-critical class (Observation 3);
        // with sequencing off the flag still routes PTW flits to their
        // separate CQ partition (Figure 13) for Selective Flit Pooling.
        pkt.latencyCritical = pkt.isPtw() && !bare_controller;
        break;
      case config::SequencingMode::PrioritizeData:
        pkt.latencyCritical =
            !pkt.isPtw() &&
            gpuLocal_[requester].priorityRng.chance(
                cfg_.netcrafter.priorityDataFraction);
        break;
    }
}

mem::SectorMask
MultiGpuSystem::fullL1Mask() const
{
    const std::uint32_t sector_bytes =
        cfg_.l1FillMode == config::L1FillMode::FullLine
            ? kCacheLineBytes
            : cfg_.netcrafter.trimGranularity;
    return mem::fullMask(kCacheLineBytes / sector_bytes);
}

mem::SectorMask
MultiGpuSystem::maskForRange(std::uint32_t offset,
                             std::uint32_t bytes) const
{
    const std::uint32_t sector_bytes =
        cfg_.l1FillMode == config::L1FillMode::FullLine
            ? kCacheLineBytes
            : cfg_.netcrafter.trimGranularity;
    const std::uint32_t first = offset / sector_bytes;
    const std::uint32_t last = (offset + bytes - 1) / sector_bytes;
    mem::SectorMask mask = 0;
    for (std::uint32_t s = first; s <= last; ++s)
        mask |= 1ull << s;
    return mask;
}

void
MultiGpuSystem::l1Fill(GpuId g, mem::FillRequest req)
{
    const Addr line = req.line;
    const GpuId owner = pageTable_.dataOwner(line);
    GpuLocal &local = gpuLocal_[g];
    obs::tracepoint(engineOf(g), obs::TraceLevel::Packets,
                    obs::TraceKind::PktStage, obs::TraceStage::L1Miss,
                    local.traceLane, line, req.bytes,
                    req.isWrite ? 1u : 0u);

    if (req.isWrite) {
        if (owner == g) {
            chips_[g].l2->write(line, [done = std::move(req.done)] {
                done(0);
            });
            return;
        }
        auto pkt = noc::makePacket(noc::PacketType::WriteReq, g, owner,
                                   line);
        markPriority(*pkt, g);
        local.outstanding[pkt->id] =
            [done = std::move(req.done)](const noc::Packet &) {
                done(0);
            };
        if (tryFusedRoundTrip(g, pkt))
            return;
        network_->sendPacket(std::move(pkt));
        return;
    }

    if (owner == g) {
        ++local.localReads;
        const mem::SectorMask mask =
            cfg_.l1FillMode == config::L1FillMode::SectorAlways
                ? maskForRange(req.offset, req.bytes)
                : fullL1Mask();
        chips_[g].l2->read(line, [done = std::move(req.done), mask] {
            done(mask);
        });
        return;
    }

    ++local.remoteReads;
    auto pkt = noc::makePacket(noc::PacketType::ReadReq, g, owner, line);
    pkt->bytesNeeded = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(req.bytes, kCacheLineBytes));
    pkt->neededOffset = static_cast<std::uint8_t>(req.offset);
    pkt->trimEligible =
        cfg_.netcrafter.trimming &&
        core::TrimEngine::fitsOneSector(req.offset, req.bytes,
                                        cfg_.netcrafter.trimGranularity);
    markPriority(*pkt, g);

    const bool inter_cluster =
        cfg_.clusterOf(g) != cfg_.clusterOf(owner);
    if (inter_cluster)
        local.remoteReadBytes.sample(req.bytes);

    const Tick t0 = engineOf(g).now();
    local.outstanding[pkt->id] = [this, g, t0, inter_cluster,
                                  req = std::move(req)](
                                     const noc::Packet &rsp) {
        if (inter_cluster)
            gpuLocal_[g].interReadLatency.sample(
                static_cast<double>(engineOf(g).now() - t0));
        mem::SectorMask mask;
        if (rsp.payloadBytes < kCacheLineBytes) {
            // Trimmed (NetCrafter) or sector (SectorAlways) response:
            // only the requested sectors arrived.
            mask = maskForRange(rsp.neededOffset, rsp.bytesNeeded);
        } else {
            mask = fullL1Mask();
        }
        req.done(mask);
    };
    if (tryFusedRoundTrip(g, pkt))
        return;
    network_->sendPacket(std::move(pkt));
}

void
MultiGpuSystem::fetchPte(GpuId g, const vm::WalkStep &step,
                         std::function<void()> done)
{
    if (step.owner == g) {
        chips_[g].l2->read(lineAddr(step.pteAddr), std::move(done));
        return;
    }
    auto pkt = noc::makePacket(noc::PacketType::PageTableReq, g,
                               step.owner, step.pteAddr);
    markPriority(*pkt, g);
    gpuLocal_[g].outstanding[pkt->id] =
        [done = std::move(done)](const noc::Packet &) { done(); };
    if (tryFusedRoundTrip(g, pkt))
        return;
    network_->sendPacket(std::move(pkt));
}

noc::PacketPtr
MultiGpuSystem::buildResponse(GpuId owner, const noc::Packet &req)
{
    switch (req.type) {
      case noc::PacketType::ReadReq: {
        auto rsp = noc::makePacket(noc::PacketType::ReadRsp, owner,
                                   req.src, req.addr);
        rsp->reqId = req.id;
        rsp->bytesNeeded = req.bytesNeeded;
        rsp->neededOffset = req.neededOffset;
        rsp->trimEligible = req.trimEligible;
        rsp->latencyCritical = req.latencyCritical;
        if (cfg_.l1FillMode == config::L1FillMode::SectorAlways &&
            req.bytesNeeded > 0) {
            // Sector-cache baseline: the response carries only the
            // requested sectors no matter which network it crosses.
            const mem::SectorMask mask =
                maskForRange(req.neededOffset, req.bytesNeeded);
            rsp->payloadBytes =
                static_cast<std::uint32_t>(std::popcount(mask)) *
                cfg_.netcrafter.trimGranularity;
            rsp->trimmed = true;
            rsp->trimSector = static_cast<std::uint8_t>(
                req.neededOffset / cfg_.netcrafter.trimGranularity);
        }
        return rsp;
      }
      case noc::PacketType::WriteReq: {
        auto rsp = noc::makePacket(noc::PacketType::WriteRsp, owner,
                                   req.src, req.addr);
        rsp->reqId = req.id;
        rsp->latencyCritical = req.latencyCritical;
        return rsp;
      }
      case noc::PacketType::PageTableReq: {
        auto rsp = noc::makePacket(noc::PacketType::PageTableRsp,
                                   owner, req.src, req.addr);
        rsp->reqId = req.id;
        rsp->latencyCritical = req.latencyCritical;
        return rsp;
      }
      default:
        NC_PANIC("response packet delivered to request handler: ",
                 req.toString());
    }
}

bool
MultiGpuSystem::tryFusedRoundTrip(GpuId g, noc::PacketPtr &pkt)
{
    flow::FidelityController *ctl = network_->flowController();
    if (!ctl)
        return false;
    sim::Engine &eng = engineOf(g);
    const Tick now = eng.now();
    // The classification covers the whole round trip: there is no
    // owner-side event left to reclassify the response, so a fused
    // request's response rides the flow lane unconditionally (its
    // transit still trains the reverse lane's rate estimate).
    if (!ctl->classify(*pkt, now))
        return false;
    pkt->injectedAt = now;
    obs::tracepoint(eng, obs::TraceLevel::Packets,
                    obs::TraceKind::PktStage,
                    obs::TraceStage::FlowTransit,
                    gpuLocal_[g].traceLane, pkt->id, pkt->totalBytes());
    const Tick req_arrive = ctl->transit(*pkt, now);
    ctl->noteDelivered(*pkt);

    // The remaining hops run as a short event chain so every virtual
    // server is touched at its own simulated time, and the owner L2 is
    // the real event-driven model (MSHRs, banks, DRAM) — only the
    // network hops are analytic. Folding the whole round trip into one
    // event at injection time reserved server slots with future-dated
    // arrivals; present-time packets then queued behind reservations
    // that were not in front of them, and the spurious backlog
    // compounded into a runaway (~12x inflation of simulated time on
    // GUPS).
    eng.scheduleAbs(req_arrive, [this, ctl, pkt]() mutable {
        const GpuId owner = pkt->dst;
        const Addr line = pkt->type == noc::PacketType::PageTableReq
                              ? lineAddr(pkt->addr)
                              : pkt->addr;
        const bool is_write = pkt->type == noc::PacketType::WriteReq;
        auto respond = [this, ctl, pkt]() mutable {
            const GpuId owner = pkt->dst;
            auto rsp = buildResponse(owner, *pkt);
            sim::Engine &rsp_eng = engineOf(rsp->dst);
            rsp->injectedAt = rsp_eng.now();
            const Tick rsp_arrive =
                ctl->transit(*rsp, rsp_eng.now());
            rsp_eng.scheduleAbs(rsp_arrive, [this, ctl,
                                             rsp]() mutable {
                obs::tracepoint(engineOf(rsp->dst),
                                obs::TraceLevel::Packets,
                                obs::TraceKind::PktStage,
                                obs::TraceStage::FlowDeliver,
                                gpuLocal_[rsp->dst].traceLane,
                                rsp->reqId, rsp->totalBytes());
                ctl->noteDelivered(*rsp);
                handleResponse(std::move(rsp));
            });
        };
        if (is_write)
            chips_[owner].l2->write(line, std::move(respond));
        else
            chips_[owner].l2->read(line, std::move(respond));
    });
    return true;
}

bool
MultiGpuSystem::trySendResponseOnFlowLane(noc::PacketPtr &rsp)
{
    flow::FidelityController *ctl = network_->flowController();
    if (!ctl)
        return false;
    sim::Engine &eng = engineOf(rsp->dst);
    const Tick now = eng.now();
    if (!ctl->classify(*rsp, now))
        return false;
    rsp->injectedAt = now;
    obs::tracepoint(eng, obs::TraceLevel::Packets,
                    obs::TraceKind::PktStage,
                    obs::TraceStage::FlowTransit,
                    gpuLocal_[rsp->dst].traceLane, rsp->id,
                    rsp->totalBytes());
    const Tick arrive = ctl->transit(*rsp, now);
    eng.scheduleAbs(arrive, [this, ctl, rsp]() mutable {
        obs::tracepoint(engineOf(rsp->dst), obs::TraceLevel::Packets,
                        obs::TraceKind::PktStage,
                        obs::TraceStage::FlowDeliver,
                        gpuLocal_[rsp->dst].traceLane, rsp->reqId,
                        rsp->totalBytes());
        ctl->noteDelivered(*rsp);
        handleResponse(std::move(rsp));
    });
    return true;
}

void
MultiGpuSystem::handleRemoteRequest(GpuId owner, noc::PacketPtr req)
{
    const bool is_write = req->type == noc::PacketType::WriteReq;
    const Addr line = req->type == noc::PacketType::PageTableReq
                          ? lineAddr(req->addr)
                          : req->addr;
    // An escalated (flit-path) request's response classifies on its
    // own: its reverse lane may well be steady even while the forward
    // lane is in a contention window.
    auto respond = [this, owner, req] {
        auto rsp = buildResponse(owner, *req);
        if (trySendResponseOnFlowLane(rsp))
            return;
        network_->sendPacket(std::move(rsp));
    };
    if (is_write) {
        chips_[owner].l2->write(line, std::move(respond));
    } else {
        if (req->type != noc::PacketType::ReadReq &&
            req->type != noc::PacketType::PageTableReq) {
            NC_PANIC("response packet delivered to request handler: ",
                     req->toString());
        }
        chips_[owner].l2->read(line, std::move(respond));
    }
}

void
MultiGpuSystem::handleResponse(noc::PacketPtr rsp)
{
    // Responses are delivered by the requester's RDMA engine, so this
    // runs on the requester's shard and only touches its GpuLocal.
    GpuLocal &local = gpuLocal_[rsp->dst];
    sim::Engine &eng = engineOf(rsp->dst);
    obs::tracepoint(eng, obs::TraceLevel::Packets,
                    obs::TraceKind::PktStage, obs::TraceStage::Complete,
                    local.traceLane, rsp->reqId,
                    static_cast<std::uint32_t>(eng.now() -
                                               rsp->injectedAt));
    auto it = local.outstanding.find(rsp->reqId);
    NC_ASSERT(it != local.outstanding.end(),
              "response for unknown request: ", rsp->toString());
    auto done = std::move(it->second);
    local.outstanding.erase(it);
    done(*rsp);
}

void
MultiGpuSystem::dispatchKernel(const workloads::Kernel &kernel,
                               std::uint64_t kernel_seed)
{
    const workloads::KernelInfo info = kernel.info();
    for (std::uint32_t cta = 0; cta < info.numCtas; ++cta) {
        const GpuId home = kernel.ctaHome(cta, cfg_.numGpus());
        NC_ASSERT(home < cfg_.numGpus(), "CTA scheduled to bad GPU");
        for (std::uint32_t w = 0; w < info.wavesPerCta; ++w) {
            WaveDesc desc;
            desc.kernel = &kernel;
            desc.cta = cta;
            desc.wave = w;
            desc.seed = kernel_seed;
            chips_[home].pendingWaves.push_back(desc);
        }
    }
    for (GpuId g = 0; g < cfg_.numGpus(); ++g)
        refillCus(g);
}

void
MultiGpuSystem::dispatchServeWave(GpuId g, const WaveDesc &desc)
{
    NC_ASSERT(g < cfg_.numGpus(), "serve wave for bad GPU ", g);
    NC_ASSERT(desc.serveTag != 0, "serve wave without a serve tag");
    chips_[g].pendingWaves.push_back(desc);
    refillCus(g);
}

void
MultiGpuSystem::refillCus(GpuId g)
{
    GpuChip &chip = chips_[g];
    if (chip.pendingWaves.empty())
        return;
    for (auto &cu : chip.cus) {
        while (cu->hasFreeSlot() && !chip.pendingWaves.empty()) {
            cu->startWavefront(chip.pendingWaves.front());
            chip.pendingWaves.pop_front();
        }
        if (chip.pendingWaves.empty())
            break;
    }
}

void
MultiGpuSystem::run(workloads::Workload &workload, double scale,
                    Tick max_cycles)
{
    const sim::RunStatus status = runFor(workload, scale, max_cycles);
    if (status != sim::RunStatus::Drained) {
        NC_FATAL(workload.name(), ": kernel exceeded the cycle limit (",
                 max_cycles, ") - livelock or undersized limit");
    }
}

sim::RunStatus
MultiGpuSystem::runFor(workloads::Workload &workload, double scale,
                       Tick max_cycles)
{
    workloads::BuildContext ctx;
    ctx.numGpus = cfg_.numGpus();
    ctx.scale = scale;
    ctx.seed = cfg_.seed;
    ctx.placement = this;
    workload.build(ctx);

    std::uint64_t kernel_idx = 0;
    for (const auto &kernel : workload.kernels()) {
        const std::uint64_t kernel_seed =
            cfg_.seed + 0x1000003ull * ++kernel_idx;
        dispatchKernel(*kernel, kernel_seed);
        // The event queues drain exactly when every wavefront retired
        // and all induced traffic (acks, write-backs) finished: the
        // inter-kernel barrier.
        const sim::RunStatus status = engine_.run(max_cycles);
        if (status != sim::RunStatus::Drained) {
            // Abandoned mid-kernel: events (and possibly cross-shard
            // exports) are still in flight. The caller decides whether
            // that is fatal; auditTeardown() makes it visible.
            return status;
        }
        // Shards stop at their own last event; the next kernel (and
        // every cycle-denominated statistic) must see the clock the
        // serial engine would be at.
        engine_.alignClocks();
    }
    return sim::RunStatus::Drained;
}

stats::Average
MultiGpuSystem::interClusterReadLatency() const
{
    stats::Average merged;
    for (const GpuLocal &local : gpuLocal_)
        merged.merge(local.interReadLatency);
    return merged;
}

stats::Distribution
MultiGpuSystem::remoteReadBytesNeeded() const
{
    stats::Distribution merged{std::vector<double>{16, 32, 48, 63}};
    for (const GpuLocal &local : gpuLocal_)
        merged.merge(local.remoteReadBytes);
    return merged;
}

std::uint64_t
MultiGpuSystem::remoteReads() const
{
    std::uint64_t sum = 0;
    for (const GpuLocal &local : gpuLocal_)
        sum += local.remoteReads;
    return sum;
}

std::uint64_t
MultiGpuSystem::localReads() const
{
    std::uint64_t sum = 0;
    for (const GpuLocal &local : gpuLocal_)
        sum += local.localReads;
    return sum;
}

std::size_t
MultiGpuSystem::outstandingRequests() const
{
    std::size_t sum = 0;
    for (const GpuLocal &local : gpuLocal_)
        sum += local.outstanding.size();
    return sum;
}

stats::Registry
MultiGpuSystem::collectStats() const
{
    stats::Registry reg;
    reg.counter("system.cycles").inc(engine_.now());
    reg.counter("system.events").inc(engine_.eventsExecuted());
    std::uint64_t near = 0, far = 0, cb_alloc = 0, cb_high = 0,
                  cb_arena = 0;
    for (unsigned s = 0; s < engine_.numShards(); ++s) {
        const sim::Engine &e = engine_.shard(s);
        near += e.queue().nearScheduled();
        far += e.queue().farScheduled();
        cb_alloc += e.callbackPoolAllocated();
        cb_high += e.callbackPoolHighWater();
        cb_arena += e.callbackArenaBytes();
    }
    reg.counter("sim.nearEvents").inc(near);
    reg.counter("sim.farEvents").inc(far);
    reg.counter("sim.callbackPoolAllocated").inc(cb_alloc);
    reg.counter("sim.callbackPoolHighWater").inc(cb_high);
    reg.counter("sim.callbackArenaBytes").inc(cb_arena);
    // Pools are thread-local: these gauges cover the calling thread
    // (shard 0) only. Diagnostics, not part of the measurement.
    reg.counter("sim.packetPoolHighWater")
        .inc(sim::ObjectPool<noc::Packet>::local().highWater());
    reg.counter("sim.flitPoolHighWater")
        .inc(sim::ObjectPool<noc::Flit>::local().highWater());
    reg.counter("sim.poolArenaBytes")
        .inc(sim::ObjectPool<noc::Packet>::local().arenaBytes() +
             sim::ObjectPool<noc::Flit>::local().arenaBytes());
    reg.counter("sim.smallFnHeapAllocs")
        .inc(sim::SmallFn::heapAllocations());
    reg.counter("system.instructions").inc(totalInstructions());
    reg.counter("system.remoteReads").inc(remoteReads());
    reg.counter("system.localReads").inc(localReads());
    reg.counter("network.interClusterFlits")
        .inc(network_->interClusterFlits());
    reg.counter("network.interClusterWireBytes")
        .inc(network_->interClusterWireBytes());

    reg.counter("sharded.shards").inc(engine_.numShards());
    reg.counter("sharded.quantaExecuted").inc(engine_.quantaExecuted());
    reg.counter("sharded.barrierStallTicks")
        .inc(engine_.totalBarrierStallTicks());
    reg.counter("sharded.crossShardFlits")
        .inc(network_->crossShardFlits());
    reg.counter("sharded.maxIngressDepth")
        .inc(network_->maxIngressDepth());
    reg.counter("sharded.barrierRoundsSkipped")
        .inc(engine_.barrierRoundsSkipped());
    reg.counter("sharded.idleParks").inc(engine_.idleParks());
    reg.counter("sharded.workThreads").inc(engine_.workThreads());
    reg.counter("sharded.stealAttempts").inc(engine_.stealAttempts());
    reg.counter("sharded.stealsWon").inc(engine_.stealsWon());
    reg.counter("sharded.stealsAborted").inc(engine_.stealsAborted());
    reg.counter("sharded.coveredStallTicks")
        .inc(engine_.coveredStallTicks());
    reg.counter("sharded.residualStallTicks")
        .inc(engine_.residualStallTicks());
    reg.average("sharded.loadSpreadAvg").merge(engine_.loadSpreadAvg());
    reg.counter("sharded.skewBound").inc(
        engine_.syncMode() == sim::SyncMode::Relaxed
            ? engine_.syncPolicy().skewBound
            : 0);
    reg.counter("sharded.maxObservedSkew").inc(engine_.maxObservedSkew());
    reg.average("sharded.observedSkewAvg").merge(engine_.skewAvg());
    reg.counter("sharded.lateSlottedFlits")
        .inc(network_->lateSlottedFlits());
    reg.counter("sharded.lateSlottedCredits")
        .inc(network_->lateSlottedCredits());
    reg.counter("sharded.lateDisplacementTicks")
        .inc(network_->lateDisplacementTicks());
    reg.counter("sharded.maxLateDisplacement")
        .inc(network_->maxLateDisplacement());
    reg.counter("network.interClusterFlitsDelivered")
        .inc(network_->interClusterFlitsDelivered());
    reg.counter("network.interClusterBytesDelivered")
        .inc(network_->interClusterBytesDelivered());
    reg.distribution("sharded.adaptiveWindowTicks",
                     engine_.windowTicksDist().bounds())
        .merge(engine_.windowTicksDist());
    reg.average("sharded.adaptiveWindowTicksAvg")
        .merge(engine_.windowTicksAvg());
    for (unsigned s = 0; s < engine_.numShards(); ++s) {
        reg.counter("sharded.shard" + std::to_string(s) + ".stallTicks")
            .inc(engine_.barrierStallTicks(s));
    }

    for (GpuId g = 0; g < cfg_.numGpus(); ++g) {
        const GpuChip &chip = chips_[g];
        const std::string p = "gpu" + std::to_string(g) + ".";
        std::uint64_t l1_acc = 0, l1_hit = 0, l1_miss = 0, instrs = 0;
        for (const auto &cu : chip.cus) {
            l1_acc += cu->l1().readAccesses();
            l1_hit += cu->l1().readHits();
            l1_miss += cu->l1().readMisses();
            instrs += cu->instructions();
        }
        reg.counter(p + "instructions").inc(instrs);
        reg.counter(p + "l1.readAccesses").inc(l1_acc);
        reg.counter(p + "l1.readHits").inc(l1_hit);
        reg.counter(p + "l1.readMisses").inc(l1_miss);
        reg.counter(p + "l2.accesses").inc(chip.l2->accesses());
        reg.counter(p + "l2.hits").inc(chip.l2->hits());
        reg.counter(p + "l2.misses").inc(chip.l2->misses());
        reg.counter(p + "l2.writebacks").inc(chip.l2->writebacks());
        reg.counter(p + "l2tlb.hits").inc(chip.l2Tlb->hits());
        reg.counter(p + "l2tlb.misses").inc(chip.l2Tlb->misses());
        reg.counter(p + "gmmu.walks").inc(chip.gmmu->walksStarted());
        reg.counter(p + "gmmu.pteFetches").inc(chip.gmmu->pteFetches());
        reg.counter(p + "dram.accesses").inc(chip.dram->accesses());
        reg.counter(p + "dram.bytes").inc(chip.dram->bytesAccessed());
    }

    for (ClusterId f = 0; f < cfg_.numClusters; ++f) {
        for (ClusterId t = 0; t < cfg_.numClusters; ++t) {
            if (f == t)
                continue;
            const auto *ctrl = network_->controller(f, t);
            if (!ctrl)
                continue;
            const std::string p = "netcrafter." + std::to_string(f) +
                                  "to" + std::to_string(t) + ".";
            reg.counter(p + "flitsEjected")
                .inc(ctrl->stats().flitsEjected);
            reg.counter(p + "poolingArms")
                .inc(ctrl->stats().poolingArms);
            reg.counter(p + "stitched")
                .inc(ctrl->stitchStats().candidatesAbsorbed);
            reg.counter(p + "trimmedPackets")
                .inc(ctrl->trimStats().packetsTrimmed);
            reg.counter(p + "bytesTrimmed")
                .inc(ctrl->trimStats().bytesTrimmed);
        }
    }
    if (const auto *ctl = network_->flowController()) {
        const flow::FlowLaneStats &fs = ctl->stats();
        reg.counter("flow.flowPackets").inc(fs.flowPackets);
        reg.counter("flow.cyclePackets").inc(fs.cyclePackets);
        reg.counter("flow.flowPacketsDelivered")
            .inc(fs.flowPacketsDelivered);
        reg.counter("flow.flowBytesInjected").inc(fs.flowBytesInjected);
        reg.counter("flow.flowBytesDelivered")
            .inc(fs.flowBytesDelivered);
        reg.counter("flow.epochsClosed").inc(fs.epochsClosed);
        reg.counter("flow.laneActivations").inc(fs.laneActivations);
        reg.counter("flow.laneEscalations").inc(fs.laneEscalations);
        reg.counter("flow.stitchedPieces").inc(fs.stitchedPieces);
        reg.counter("flow.md1WaitTicks").inc(fs.md1WaitTicks);
        reg.counter("flow.fifoWaitTicks").inc(fs.fifoWaitTicks);
        reg.counter("flow.recomputes").inc(fs.recomputes);
        reg.counter("flow.trimmedPackets")
            .inc(ctl->trimStats().packetsTrimmed);
        reg.counter("flow.bytesTrimmed")
            .inc(ctl->trimStats().bytesTrimmed);
    }
    reg.average("system.interReadLatency") = interClusterReadLatency();
    reg.distribution("system.remoteReadBytesNeeded") =
        remoteReadBytesNeeded();
    return reg;
}

void
MultiGpuSystem::dumpStats(std::ostream &os) const
{
    collectStats().dump(os);
}

std::uint64_t
MultiGpuSystem::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &chip : chips_)
        for (const auto &cu : chip.cus)
            sum += cu->instructions();
    return sum;
}

std::uint64_t
MultiGpuSystem::l1ReadAccesses() const
{
    std::uint64_t sum = 0;
    for (const auto &chip : chips_)
        for (const auto &cu : chip.cus)
            sum += cu->l1().readAccesses();
    return sum;
}

std::uint64_t
MultiGpuSystem::l1ReadMisses() const
{
    std::uint64_t sum = 0;
    for (const auto &chip : chips_)
        for (const auto &cu : chip.cus)
            sum += cu->l1().readMisses();
    return sum;
}

double
MultiGpuSystem::l1Mpki() const
{
    // MPKI per kilo *thread* instruction, the conventional granularity.
    const std::uint64_t instrs = threadInstructions();
    return instrs ? 1000.0 * static_cast<double>(l1ReadMisses()) /
                        static_cast<double>(instrs)
                  : 0.0;
}

std::uint64_t
MultiGpuSystem::pageWalks() const
{
    std::uint64_t sum = 0;
    for (const auto &chip : chips_)
        sum += chip.gmmu->walksStarted();
    return sum;
}

double
MultiGpuSystem::meanWalkLength() const
{
    double sum = 0;
    std::uint32_t n = 0;
    for (const auto &chip : chips_) {
        if (chip.gmmu->walksStarted() > 0) {
            sum += chip.gmmu->meanWalkLength();
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace netcrafter::gpu
