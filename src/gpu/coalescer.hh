/**
 * @file
 * Hardware memory coalescer (Section 2.1): merges the per-thread
 * addresses of one wavefront instruction into per-cache-line accesses,
 * recording the byte span each line access actually needs — the signal
 * Trimming exploits (Observation 2, Figure 7).
 */

#ifndef NETCRAFTER_GPU_COALESCER_HH
#define NETCRAFTER_GPU_COALESCER_HH

#include <cstdint>
#include <vector>

#include "src/workloads/workload.hh"

namespace netcrafter::gpu {

/** One coalesced per-line access. */
struct CoalescedAccess
{
    /** 64B-aligned line address. */
    Addr line = 0;

    /** First needed byte within the line. */
    std::uint32_t offset = 0;

    /** Needed byte span within the line (1..64). */
    std::uint32_t bytes = 0;

    bool isWrite = false;
};

/**
 * Coalesce @p instr into per-line accesses, ordered by first touch.
 * Inactive lanes (kAddrInvalid) are skipped.
 */
std::vector<CoalescedAccess> coalesce(const workloads::Instruction &instr);

} // namespace netcrafter::gpu

#endif // NETCRAFTER_GPU_COALESCER_HH
