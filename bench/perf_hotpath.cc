/**
 * @file
 * Hot-path performance harness: runs the Figure 14 workload set
 * (every Table 3 app under the cumulative-mechanism configurations)
 * serially and reports simulator throughput — events per host second
 * and wall-time per figure point — as machine-readable JSON.
 *
 * The JSON seeds the repo's perf trajectory: each entry in
 * BENCH_hotpath.json is one (config, workload) point, plus aggregate
 * totals. Compare the aggregate "events_per_second" across commits to
 * track hot-path regressions; the simulated figures themselves must
 * stay bit-identical while this number grows.
 *
 * Usage:
 *   perf_hotpath [--out FILE] [--quick] [--scale S]
 *                [--shards [--adaptive]] [--worksteal] [--obs]
 *                [--flow]
 *
 *   --out FILE   write JSON to FILE (default BENCH_hotpath.json;
 *                BENCH_parallel.json with --shards, BENCH_adaptive.json
 *                with --shards --adaptive, BENCH_worksteal.json with
 *                --worksteal, BENCH_obs.json with --obs)
 *   --quick      baseline + full NetCrafter configs only (CI smoke)
 *   --scale S    extra problem-size multiplier on top of
 *                NETCRAFTER_SCALE (default 1.0)
 *   --shards     parallel-scaling mode: run the figure 14 grid on a
 *                4-cluster topology at 1, 2, and 4 engine shards and
 *                report events/s per shard count plus the event census
 *                (which must be identical across shard counts). The
 *                JSON records host_cpus: speedup over serial requires
 *                at least as many host cores as shards, so on a
 *                single-core host the sharded points only measure
 *                barrier overhead. Runs the fixed conservative quantum
 *                (the synchronization-tax baseline).
 *   --adaptive   with --shards: use the adaptive per-quantum lookahead
 *                instead. Diff barrier_stall_ticks / quanta_executed
 *                against the fixed-quantum BENCH_parallel.json from
 *                the same host to see the tax shrink.
 *   --worksteal  work-stealing mode: the figure 14 grid on the same
 *                4-cluster topology, adaptive lookahead, serial plus a
 *                4-shard executor-policy sweep — one thread per shard
 *                with stealing off (the PR 5 adaptive baseline), then
 *                multiplexed and stealing points (T=1, T=2 off, T=2 on,
 *                T=4 on). Every point must reproduce the serial census.
 *                The JSON records the steal counters, the covered /
 *                residual barrier-stall split, and wall-clock speedup
 *                vs serial; host_cpus comes from the scheduling
 *                affinity mask, so a single-core reading tells you the
 *                speedup column measures protocol overhead, not
 *                parallelism.
 *   --obs        observability-overhead mode: run the grid once with
 *                tracing disabled and once with packet-level tracing +
 *                interval sampling held in memory, and fail unless
 *                every measured statistic is identical. Writes
 *                BENCH_obs.json with both throughputs; with
 *                --ref BENCH_hotpath.json it also reports
 *                (informationally) whether the disabled-path
 *                throughput stayed within 2% of the reference.
 *   --ref FILE   reference BENCH_hotpath.json for --obs
 *   --flow       hybrid-fidelity mode: every grid point at cycle,
 *                hybrid and flow fidelity (single engine, default
 *                topology). Writes BENCH_flow.json with per-point
 *                events-eliminated and wall-clock speedup columns and
 *                the relative cycles error of each approximate mode;
 *                fails only on broken flow-lane conservation (accuracy
 *                is validate-fidelity's gate)
 *   --relaxed    relaxed-sync mode: the fig14 grid on the 4-cluster
 *                topology, Strict vs Relaxed at a sweep of skew
 *                bounds (16/64/256/1024 ticks) at 4 shards, plus
 *                executor-policy replicas of the relaxed-256 point
 *                (must reproduce it bit-for-bit) and 8-/16-cluster
 *                scale points. Writes BENCH_relaxed.json with the
 *                rendezvous-reduction, residual-stall-reduction,
 *                observed-skew and late-slot-displacement columns;
 *                fails on strict census divergence, instruction
 *                conservation breakage, a skew-bound violation, or
 *                replica divergence (accuracy is audit-skew's gate)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "src/config/system_config.hh"
#include "src/exp/export.hh"
#include "src/obs/json_validate.hh"
#include "src/obs/telemetry.hh"
#include "src/obs/trace.hh"
#include "src/sim/sharded_engine.hh"

namespace {

using netcrafter::config::SystemConfig;
using netcrafter::harness::RunResult;

struct Point
{
    std::string config;
    std::string workload;
    RunResult result;
};

double
eventsPerSecond(std::uint64_t events, double seconds)
{
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
}

/**
 * Parallel-scaling bench: the fig14 grid on a 4-cluster topology
 * (one GPU per cluster, so 4 shards partition it fully), swept over
 * shard counts. Fails if any sharded census diverges from serial.
 * Runs with the fixed conservative quantum by default (the PR 3
 * baseline, BENCH_parallel.json); with @p adaptive it uses the
 * per-quantum adaptive lookahead (BENCH_adaptive.json) so the two
 * files compare the synchronization tax on the same host — the
 * adaptive rows must show fewer quanta and fewer barrier stall ticks.
 */
int
runShardBench(const std::string &out_path, bool quick, double scale,
              bool adaptive)
{
    using namespace netcrafter;

    sim::setDefaultLookaheadMode(adaptive
                                     ? sim::LookaheadMode::Adaptive
                                     : sim::LookaheadMode::FixedQuantum);

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }
    // Same GPU count as the default topology, but one GPU per cluster
    // so every shard count up to 4 gets real work.
    for (auto &[name, cfg] : configs) {
        cfg.numClusters = 4;
        cfg.gpusPerCluster = 1;
    }

    const std::string note =
        bench::undersubscribedNote("perf_hotpath --shards", 4);

    const std::vector<unsigned> shard_counts = {1, 2, 4};
    struct ShardRow
    {
        unsigned shards;
        std::uint64_t events = 0;
        std::uint64_t cycles = 0;
        std::uint64_t quanta = 0;
        std::uint64_t stallTicks = 0;
        std::uint64_t crossFlits = 0;
        std::uint64_t roundsSkipped = 0;
        std::uint64_t idleParks = 0;
        std::uint64_t windowSamples = 0;
        double windowTicksSum = 0;
        double windowTicksMax = 0;
        double wall = 0;
    };
    std::vector<ShardRow> rows;
    bool census_ok = true;

    for (unsigned shards : shard_counts) {
        ShardRow row;
        row.shards = shards;
        for (const auto &[cfg_name, cfg] : configs) {
            for (const auto &app : bench::apps()) {
                const RunResult r =
                    harness::runWorkload(app, cfg, scale, shards);
                row.events += r.events;
                row.cycles += r.cycles;
                row.quanta += r.quantaExecuted;
                row.stallTicks += r.barrierStallTicks;
                row.crossFlits += r.crossShardFlits;
                row.roundsSkipped += r.barrierRoundsSkipped;
                row.idleParks += r.idleParks;
                row.windowSamples += r.adaptiveWindowSamples;
                row.windowTicksSum += r.adaptiveWindowMean *
                    static_cast<double>(r.adaptiveWindowSamples);
                row.windowTicksMax =
                    std::max(row.windowTicksMax, r.adaptiveWindowMax);
                row.wall += r.wallSeconds;
            }
        }
        if (!rows.empty() && (row.events != rows.front().events ||
                              row.cycles != rows.front().cycles)) {
            std::cerr << "perf_hotpath: census diverged at " << shards
                      << " shards: " << row.events << " events / "
                      << row.cycles << " cycles vs serial "
                      << rows.front().events << " / "
                      << rows.front().cycles << "\n";
            census_ok = false;
        }
        std::cerr << shards << " shard(s): " << row.events
                  << " events in " << row.wall << "s ("
                  << eventsPerSecond(row.events, row.wall) << " ev/s)\n";
        rows.push_back(row);
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    const unsigned host_cpus = bench::hostCpus();
    const double serial_evps =
        eventsPerSecond(rows.front().events, rows.front().wall);
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"perf_parallel\",\n";
    os << "  \"workload_set\": \"fig14\",\n";
    os << "  \"topology\": \"4 clusters x 1 gpu\",\n";
    os << "  \"lookahead\": \"" << (adaptive ? "adaptive" : "fixed")
       << "\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << netcrafter::harness::envScale()
       << ",\n";
    os << "  \"host_cpus\": " << host_cpus << ",\n";
    os << "  \"notes\": \"" << exp::jsonEscape(note) << "\",\n";
    os << "  \"census_identical\": " << (census_ok ? "true" : "false")
       << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ShardRow &r = rows[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"shards\": " << r.shards << ", "
           << "\"events\": " << r.events << ", "
           << "\"cycles\": " << r.cycles << ", "
           << "\"quanta_executed\": " << r.quanta << ", "
           << "\"barrier_stall_ticks\": " << r.stallTicks << ", "
           << "\"cross_shard_flits\": " << r.crossFlits << ", "
           << "\"barrier_rounds_skipped\": " << r.roundsSkipped << ", "
           << "\"idle_parks\": " << r.idleParks << ", "
           << "\"mean_window_ticks\": "
           << (r.windowSamples > 0
                   ? r.windowTicksSum /
                         static_cast<double>(r.windowSamples)
                   : 0.0)
           << ", "
           << "\"max_window_ticks\": " << r.windowTicksMax << ", "
           << "\"wall_seconds\": " << r.wall << ", "
           << "\"events_per_second\": "
           << eventsPerSecond(r.events, r.wall) << ", "
           << "\"speedup_vs_serial\": "
           << (serial_evps > 0
                   ? eventsPerSecond(r.events, r.wall) / serial_evps
                   : 0.0)
           << "}";
    }
    os << "\n  ]\n}\n";

    std::cout << "perf_hotpath --shards"
              << (adaptive ? " --adaptive: " : ": ")
              << (census_ok ? "census identical across "
                            : "CENSUS DIVERGED across ")
              << rows.size() << " shard counts, host_cpus="
              << host_cpus << " (JSON: " << out_path << ")\n";
    return census_ok ? 0 : 1;
}

/**
 * Work-stealing bench: the fig14 grid on the 4-cluster topology under
 * the adaptive lookahead (the PR 5 mode, so the covered/residual stall
 * split diffs directly against BENCH_adaptive.json), swept over
 * executor policies at a fixed 4 shards. The first sharded point — one
 * thread per shard, stealing off — IS the PR 5 configuration; the
 * remaining points multiplex the four work units onto fewer threads
 * and turn the claim ledger on, which is where steals actually fire.
 * Fails if any point's census diverges from serial.
 */
int
runWorkstealBench(const std::string &out_path, bool quick, double scale)
{
    using namespace netcrafter;

    sim::setDefaultLookaheadMode(sim::LookaheadMode::Adaptive);

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }
    for (auto &[name, cfg] : configs) {
        cfg.numClusters = 4;
        cfg.gpusPerCluster = 1;
    }

    struct ExecRow
    {
        std::string label;
        unsigned shards;
        sim::ExecPolicy exec;
        std::uint64_t events = 0;
        std::uint64_t cycles = 0;
        std::uint64_t quanta = 0;
        std::uint64_t stallTicks = 0;
        std::uint64_t coveredStall = 0;
        std::uint64_t residualStall = 0;
        std::uint64_t stealAttempts = 0;
        std::uint64_t stealsWon = 0;
        std::uint64_t stealsAborted = 0;
        std::uint64_t crossFlits = 0;
        std::uint64_t roundsSkipped = 0;
        double spreadSum = 0;
        std::uint64_t spreadPoints = 0;
        unsigned workThreads = 1;
        double wall = 0;
    };
    std::vector<ExecRow> rows = {
        {"serial", 1, sim::ExecPolicy{0, false, 1}},
        {"s4-t4", 4, sim::ExecPolicy{0, false, 1}},
        {"s4-t1", 4, sim::ExecPolicy{1, false, 1}},
        {"s4-t2", 4, sim::ExecPolicy{2, false, 1}},
        {"s4-t2-steal", 4, sim::ExecPolicy{2, true, 1}},
        {"s4-t4-steal", 4, sim::ExecPolicy{4, true, 1}},
    };
    const std::string note =
        bench::undersubscribedNote("perf_hotpath --worksteal", 4);
    const obs::TraceOptions no_trace;
    bool census_ok = true;

    for (ExecRow &row : rows) {
        for (const auto &[cfg_name, cfg] : configs) {
            for (const auto &app : bench::apps()) {
                const RunResult r = harness::runWorkload(
                    app, cfg, scale, row.shards, no_trace, row.exec);
                row.events += r.events;
                row.cycles += r.cycles;
                row.quanta += r.quantaExecuted;
                row.stallTicks += r.barrierStallTicks;
                row.coveredStall += r.coveredStallTicks;
                row.residualStall += r.residualStallTicks;
                row.stealAttempts += r.stealAttempts;
                row.stealsWon += r.stealsWon;
                row.stealsAborted += r.stealsAborted;
                row.crossFlits += r.crossShardFlits;
                row.roundsSkipped += r.barrierRoundsSkipped;
                row.spreadSum += r.loadSpreadMean;
                row.spreadPoints += r.loadSpreadMean > 0 ? 1 : 0;
                row.workThreads = r.workThreads;
                row.wall += r.wallSeconds;
            }
        }
        if (&row != &rows.front() &&
            (row.events != rows.front().events ||
             row.cycles != rows.front().cycles)) {
            std::cerr << "perf_hotpath: census diverged at "
                      << row.label << ": " << row.events << " events / "
                      << row.cycles << " cycles vs serial "
                      << rows.front().events << " / "
                      << rows.front().cycles << "\n";
            census_ok = false;
        }
        std::cerr << row.label << ": " << row.events << " events in "
                  << row.wall << "s ("
                  << eventsPerSecond(row.events, row.wall)
                  << " ev/s), steals " << row.stealsWon << "/"
                  << row.stealAttempts << ", residual stall "
                  << row.residualStall << "/" << row.stallTicks << "\n";
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    const unsigned host_cpus = bench::hostCpus();
    const double serial_evps =
        eventsPerSecond(rows.front().events, rows.front().wall);
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"perf_worksteal\",\n";
    os << "  \"workload_set\": \"fig14\",\n";
    os << "  \"topology\": \"4 clusters x 1 gpu\",\n";
    os << "  \"lookahead\": \"adaptive\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << netcrafter::harness::envScale()
       << ",\n";
    os << "  \"host_cpus\": " << host_cpus << ",\n";
    os << "  \"notes\": \"" << exp::jsonEscape(note) << "\",\n";
    os << "  \"census_identical\": " << (census_ok ? "true" : "false")
       << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ExecRow &r = rows[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"label\": \"" << exp::jsonEscape(r.label) << "\", "
           << "\"shards\": " << r.shards << ", "
           << "\"work_threads\": " << r.workThreads << ", "
           << "\"steal\": " << (r.exec.steal ? "true" : "false") << ", "
           << "\"events\": " << r.events << ", "
           << "\"cycles\": " << r.cycles << ", "
           << "\"quanta_executed\": " << r.quanta << ", "
           << "\"barrier_stall_ticks\": " << r.stallTicks << ", "
           << "\"covered_stall_ticks\": " << r.coveredStall << ", "
           << "\"residual_stall_ticks\": " << r.residualStall << ", "
           << "\"steal_attempts\": " << r.stealAttempts << ", "
           << "\"steals_won\": " << r.stealsWon << ", "
           << "\"steals_aborted\": " << r.stealsAborted << ", "
           << "\"cross_shard_flits\": " << r.crossFlits << ", "
           << "\"barrier_rounds_skipped\": " << r.roundsSkipped << ", "
           << "\"load_spread_mean\": "
           << (r.spreadPoints > 0
                   ? r.spreadSum / static_cast<double>(r.spreadPoints)
                   : 0.0)
           << ", "
           << "\"wall_seconds\": " << r.wall << ", "
           << "\"events_per_second\": "
           << eventsPerSecond(r.events, r.wall) << ", "
           << "\"speedup_vs_serial\": "
           << (serial_evps > 0
                   ? eventsPerSecond(r.events, r.wall) / serial_evps
                   : 0.0)
           << "}";
    }
    os << "\n  ]\n}\n";

    std::cout << "perf_hotpath --worksteal: "
              << (census_ok ? "census identical across "
                            : "CENSUS DIVERGED across ")
              << rows.size() << " executor policies, host_cpus="
              << host_cpus << " (JSON: " << out_path << ")\n";
    return census_ok ? 0 : 1;
}

/**
 * Relaxed-sync bench: the fig14 grid on the 4-cluster topology under
 * the adaptive lookahead, comparing Strict execution against Relaxed
 * execution at a sweep of skew bounds (all at 4 shards, one thread per
 * shard), plus two executor-policy replicas of the headline relaxed
 * point that must reproduce its measurement exactly, and 8- and
 * 16-cluster scale points that only the relaxed epoch rendezvous makes
 * tractable. Writes BENCH_relaxed.json with, per relaxed row, the
 * barrier-rendezvous reduction over Strict, the residual-stall
 * reduction, the observed-skew extrema (gated <= the bound), and the
 * late-slot displacement census. Fails when a Strict row's census
 * diverges from serial, when a Relaxed row breaks instruction
 * conservation or its skew bound, or when the policy replicas diverge
 * from the headline relaxed measurement.
 */
int
runRelaxedBench(const std::string &out_path, bool quick, double scale)
{
    using namespace netcrafter;

    sim::setDefaultLookaheadMode(sim::LookaheadMode::Adaptive);

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }
    for (auto &[name, cfg] : configs) {
        cfg.numClusters = 4;
        cfg.gpusPerCluster = 1;
    }

    const sim::SyncPolicy strict{};
    auto relaxed = [](Tick bound) {
        return sim::SyncPolicy{sim::SyncMode::Relaxed, bound};
    };

    struct SyncRow
    {
        std::string label;
        unsigned shards;
        sim::ExecPolicy exec;
        sim::SyncPolicy sync;
        std::uint64_t events = 0;
        std::uint64_t cycles = 0;
        std::uint64_t instructions = 0;
        std::uint64_t quanta = 0;
        std::uint64_t stallTicks = 0;
        std::uint64_t residualStall = 0;
        std::uint64_t maxSkew = 0;
        double skewSum = 0;
        std::uint64_t skewPoints = 0;
        std::uint64_t lateArrivals = 0;
        std::uint64_t lateCredits = 0;
        std::uint64_t lateDisplacement = 0;
        std::uint64_t maxLateDisplacement = 0;
        double wall = 0;
        std::vector<RunResult> results;
    };
    const sim::ExecPolicy t4{0, false, 1};
    std::vector<SyncRow> rows = {
        {"serial", 1, t4, strict},
        {"s4-strict", 4, t4, strict},
        {"s4-relaxed-16", 4, t4, relaxed(16)},
        {"s4-relaxed-64", 4, t4, relaxed(64)},
        {"s4-relaxed-256", 4, t4, relaxed(256)},
        {"s4-relaxed-1024", 4, t4, relaxed(1024)},
        // Executor-policy replicas of the headline relaxed point: the
        // relaxed epoch schedule is a pure function of simulated state,
        // so these must reproduce s4-relaxed-256 measurement-for-
        // measurement despite different thread counts and stealing.
        {"s4-t2-relaxed-256", 4, sim::ExecPolicy{2, false, 1},
         relaxed(256)},
        {"s4-t4-steal-relaxed-256", 4, sim::ExecPolicy{4, true, 1},
         relaxed(256)},
    };
    const std::string note =
        bench::undersubscribedNote("perf_hotpath --relaxed", 4);
    const obs::TraceOptions no_trace;
    const flow::Fidelity cycle = flow::Fidelity::Cycle;

    bool census_ok = true;       // strict rows vs serial, bit-exact
    bool conserved = true;       // relaxed rows: instructions vs serial
    bool skew_bounded = true;    // max observed skew <= bound, per run
    bool replicas_match = true;  // policy replicas vs s4-relaxed-256

    for (SyncRow &row : rows) {
        for (const auto &[cfg_name, cfg] : configs) {
            for (const auto &app : bench::apps()) {
                const RunResult r = harness::runWorkload(
                    app, cfg, scale, row.shards, no_trace, row.exec,
                    cycle, row.sync);
                row.events += r.events;
                row.cycles += r.cycles;
                row.instructions += r.instructions;
                row.quanta += r.quantaExecuted;
                row.stallTicks += r.barrierStallTicks;
                row.residualStall += r.residualStallTicks;
                row.maxSkew = std::max(row.maxSkew, r.maxObservedSkew);
                if (r.meanObservedSkew > 0) {
                    row.skewSum += r.meanObservedSkew;
                    ++row.skewPoints;
                }
                row.lateArrivals += r.lateArrivals;
                row.lateCredits += r.lateCredits;
                row.lateDisplacement += r.lateDisplacementTicks;
                row.maxLateDisplacement = std::max(
                    row.maxLateDisplacement, r.maxLateDisplacement);
                row.wall += r.wallSeconds;
                if (row.sync.mode == sim::SyncMode::Relaxed &&
                    r.maxObservedSkew >
                        static_cast<std::uint64_t>(
                            row.sync.skewBound)) {
                    std::cerr << "perf_hotpath --relaxed: skew bound "
                                 "VIOLATED at "
                              << row.label << "/" << cfg_name << "/"
                              << app << ": " << r.maxObservedSkew
                              << " > " << row.sync.skewBound << "\n";
                    skew_bounded = false;
                }
                row.results.push_back(r);
            }
        }
        const SyncRow &serial_row = rows.front();
        if (&row != &serial_row) {
            if (row.sync.mode == sim::SyncMode::Strict &&
                (row.events != serial_row.events ||
                 row.cycles != serial_row.cycles)) {
                std::cerr << "perf_hotpath --relaxed: strict census "
                             "diverged at "
                          << row.label << "\n";
                census_ok = false;
            }
            if (row.instructions != serial_row.instructions) {
                std::cerr << "perf_hotpath --relaxed: instruction "
                             "conservation BROKEN at "
                          << row.label << ": " << row.instructions
                          << " vs serial " << serial_row.instructions
                          << "\n";
                conserved = false;
            }
        }
        std::cerr << row.label << ": " << row.events << " events / "
                  << row.quanta << " quanta / " << row.residualStall
                  << " residual stall, max skew " << row.maxSkew
                  << ", " << row.lateArrivals << " late arrivals ("
                  << row.wall << "s)\n";
    }

    // The headline relaxed point and its executor-policy replicas must
    // report identical measurements run-for-run.
    {
        const SyncRow *headline = nullptr;
        for (const SyncRow &row : rows)
            if (row.label == "s4-relaxed-256")
                headline = &row;
        for (const SyncRow &row : rows) {
            if (&row == headline ||
                row.label.find("relaxed-256") == std::string::npos)
                continue;
            for (std::size_t i = 0; i < row.results.size(); ++i) {
                if (!harness::sameMeasurement(row.results[i],
                                              headline->results[i])) {
                    std::cerr << "perf_hotpath --relaxed: replica "
                              << row.label
                              << " DIVERGED from s4-relaxed-256 at "
                                 "point "
                              << i << "\n";
                    replicas_match = false;
                    break;
                }
            }
        }
    }

    // Scale points: grids the strict doorbell barrier priced out. Each
    // cluster count is its own simulated system, so strict and relaxed
    // compare within a pair only. Run before the JSON opens so their
    // conservation/skew checks feed the top-level gates.
    struct ScalePoint
    {
        unsigned clusters;
        std::string workload;
        RunResult result;
    };
    std::vector<ScalePoint> scale_points;
    for (unsigned clusters : std::vector<unsigned>{8, 16}) {
        SystemConfig cfg = config::baselineConfig();
        cfg.numClusters = clusters;
        cfg.gpusPerCluster = 1;
        const std::string app = bench::apps().front();
        const RunResult s = harness::runWorkload(
            app, cfg, scale, clusters, no_trace, t4, cycle, strict);
        const RunResult x = harness::runWorkload(
            app, cfg, scale, clusters, no_trace, t4, cycle,
            relaxed(256));
        if (x.instructions != s.instructions) {
            std::cerr << "perf_hotpath --relaxed: instruction "
                         "conservation BROKEN at " << clusters
                      << " clusters\n";
            conserved = false;
        }
        if (x.maxObservedSkew > 256) {
            std::cerr << "perf_hotpath --relaxed: skew bound VIOLATED "
                         "at " << clusters << " clusters\n";
            skew_bounded = false;
        }
        std::cerr << "s" << clusters << ": strict "
                  << s.quantaExecuted << " quanta vs relaxed "
                  << x.quantaExecuted << " quanta, max skew "
                  << x.maxObservedSkew << "\n";
        scale_points.push_back({clusters, app, s});
        scale_points.push_back({clusters, app, x});
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    const unsigned host_cpus = bench::hostCpus();
    const SyncRow &strict4 = rows[1];
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"perf_relaxed\",\n";
    os << "  \"workload_set\": \"fig14\",\n";
    os << "  \"topology\": \"4 clusters x 1 gpu\",\n";
    os << "  \"lookahead\": \"adaptive\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << harness::envScale() << ",\n";
    os << "  \"host_cpus\": " << host_cpus << ",\n";
    os << "  \"notes\": \"" << exp::jsonEscape(note) << "\",\n";
    os << "  \"strict_census_identical\": "
       << (census_ok ? "true" : "false") << ",\n";
    os << "  \"instructions_conserved\": "
       << (conserved ? "true" : "false") << ",\n";
    os << "  \"skew_within_bound\": "
       << (skew_bounded ? "true" : "false") << ",\n";
    os << "  \"replicas_identical\": "
       << (replicas_match ? "true" : "false") << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SyncRow &r = rows[i];
        const bool is_relaxed = r.sync.mode == sim::SyncMode::Relaxed;
        os << (i ? ",\n    {" : "\n    {");
        os << "\"label\": \"" << exp::jsonEscape(r.label) << "\", "
           << "\"shards\": " << r.shards << ", "
           << "\"sync_mode\": \"" << sim::syncModeName(r.sync.mode)
           << "\", "
           << "\"skew_bound\": "
           << (is_relaxed ? static_cast<std::uint64_t>(r.sync.skewBound)
                          : 0)
           << ", "
           << "\"steal\": " << (r.exec.steal ? "true" : "false") << ", "
           << "\"events\": " << r.events << ", "
           << "\"cycles\": " << r.cycles << ", "
           << "\"instructions\": " << r.instructions << ", "
           << "\"quanta_executed\": " << r.quanta << ", "
           << "\"barrier_stall_ticks\": " << r.stallTicks << ", "
           << "\"residual_stall_ticks\": " << r.residualStall << ", "
           << "\"max_observed_skew\": " << r.maxSkew << ", "
           << "\"mean_observed_skew\": "
           << (r.skewPoints > 0
                   ? r.skewSum / static_cast<double>(r.skewPoints)
                   : 0.0)
           << ", "
           << "\"late_arrivals\": " << r.lateArrivals << ", "
           << "\"late_credits\": " << r.lateCredits << ", "
           << "\"late_displacement_ticks\": " << r.lateDisplacement
           << ", "
           << "\"max_late_displacement\": " << r.maxLateDisplacement
           << ", "
           << "\"quanta_reduction_x\": "
           << (is_relaxed && r.quanta > 0
                   ? static_cast<double>(strict4.quanta) /
                         static_cast<double>(r.quanta)
                   : 1.0)
           << ", "
           << "\"residual_stall_reduction_frac\": "
           << (is_relaxed && strict4.residualStall > 0
                   ? 1.0 - static_cast<double>(r.residualStall) /
                               static_cast<double>(strict4.residualStall)
                   : 0.0)
           << ", "
           << "\"cycles_relerr\": "
           << (rows.front().cycles > 0
                   ? (static_cast<double>(r.cycles) -
                      static_cast<double>(rows.front().cycles)) /
                         static_cast<double>(rows.front().cycles)
                   : 0.0)
           << ", "
           << "\"wall_seconds\": " << r.wall << ", "
           << "\"events_per_second\": "
           << eventsPerSecond(r.events, r.wall) << "}";
    }
    os << "\n  ],\n";
    os << "  \"scale_points\": [";
    for (std::size_t i = 0; i < scale_points.size(); ++i) {
        const ScalePoint &p = scale_points[i];
        const RunResult &r = p.result;
        os << (i ? ",\n    {" : "\n    {");
        os << "\"label\": \"s" << p.clusters << "-"
           << sim::syncModeName(r.syncMode) << "\", "
           << "\"clusters\": " << p.clusters << ", "
           << "\"shards\": " << p.clusters << ", "
           << "\"workload\": \"" << exp::jsonEscape(p.workload)
           << "\", "
           << "\"sync_mode\": \"" << sim::syncModeName(r.syncMode)
           << "\", "
           << "\"skew_bound\": "
           << static_cast<std::uint64_t>(r.skewBound) << ", "
           << "\"events\": " << r.events << ", "
           << "\"cycles\": "
           << static_cast<std::uint64_t>(r.cycles) << ", "
           << "\"instructions\": " << r.instructions << ", "
           << "\"quanta_executed\": " << r.quantaExecuted << ", "
           << "\"residual_stall_ticks\": " << r.residualStallTicks
           << ", "
           << "\"max_observed_skew\": " << r.maxObservedSkew << ", "
           << "\"late_arrivals\": " << r.lateArrivals << ", "
           << "\"wall_seconds\": " << r.wallSeconds << "}";
    }
    os << "\n  ]\n}\n";

    const bool ok =
        census_ok && conserved && skew_bounded && replicas_match;
    std::cout << "perf_hotpath --relaxed: "
              << (ok ? "PASS" : "FAIL") << " — strict census "
              << (census_ok ? "identical" : "DIVERGED")
              << ", instructions "
              << (conserved ? "conserved" : "BROKEN") << ", skew "
              << (skew_bounded ? "within bound" : "OUT OF BOUND")
              << ", replicas "
              << (replicas_match ? "identical" : "DIVERGED")
              << ", host_cpus=" << host_cpus << " (JSON: " << out_path
              << ")\n";
    return ok ? 0 : 1;
}

/**
 * Hybrid-fidelity bench: every fig14 grid point at cycle, hybrid and
 * flow fidelity on the default topology (flow lanes require a single
 * engine). Reports, per point and in aggregate, the events eliminated
 * by the flow lane and the wall-clock speedup of each approximate mode
 * over the cycle-accurate run, plus the relative cycles error so the
 * speed/accuracy trade is visible in one file. Writes BENCH_flow.json.
 * Accuracy is gated by validate-fidelity, not here; this bench fails
 * only if a run breaks flow-lane conservation.
 */
int
runFlowBench(const std::string &out_path, bool quick, double scale)
{
    using namespace netcrafter;

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }

    struct FlowPoint
    {
        std::string config;
        std::string workload;
        RunResult cycle, hybrid, flow;
    };
    const obs::TraceOptions no_trace;
    const sim::ExecPolicy serial{0, false, 1};
    std::vector<FlowPoint> points;
    bool conserved = true;

    auto conservationOk = [](const RunResult &r) {
        return r.flowPackets == r.flowPacketsDelivered &&
               r.flowBytesInjected == r.flowBytesDelivered;
    };

    for (const auto &[cfg_name, cfg] : configs) {
        for (const auto &app : bench::apps()) {
            FlowPoint p;
            p.config = cfg_name;
            p.workload = app;
            p.cycle = harness::runWorkload(app, cfg, scale, 1, no_trace,
                                           serial, flow::Fidelity::Cycle);
            p.hybrid = harness::runWorkload(app, cfg, scale, 1, no_trace,
                                            serial,
                                            flow::Fidelity::Hybrid);
            p.flow = harness::runWorkload(app, cfg, scale, 1, no_trace,
                                          serial, flow::Fidelity::Flow);
            if (!conservationOk(p.hybrid) || !conservationOk(p.flow)) {
                std::cerr << "perf_hotpath --flow: conservation broken "
                             "at "
                          << cfg_name << "/" << app << "\n";
                conserved = false;
            }
            std::cerr << cfg_name << "/" << app << ": "
                      << p.cycle.events << " ev cycle, " << p.flow.events
                      << " ev flow ("
                      << (p.flow.wallSeconds > 0
                              ? p.cycle.wallSeconds / p.flow.wallSeconds
                              : 0.0)
                      << "x wall)\n";
            points.push_back(std::move(p));
        }
    }

    std::uint64_t cyc_events = 0, hyb_events = 0, flo_events = 0;
    double cyc_wall = 0, hyb_wall = 0, flo_wall = 0;
    for (const FlowPoint &p : points) {
        cyc_events += p.cycle.events;
        hyb_events += p.hybrid.events;
        flo_events += p.flow.events;
        cyc_wall += p.cycle.wallSeconds;
        hyb_wall += p.hybrid.wallSeconds;
        flo_wall += p.flow.wallSeconds;
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    auto relerr = [](std::uint64_t approx, std::uint64_t exact) {
        if (exact == 0)
            return 0.0;
        const double d = static_cast<double>(approx) -
                         static_cast<double>(exact);
        return d / static_cast<double>(exact);
    };
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"perf_flow\",\n";
    os << "  \"workload_set\": \"fig14\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << harness::envScale() << ",\n";
    os << "  \"conservation_exact\": " << (conserved ? "true" : "false")
       << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const FlowPoint &p = points[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"config\": \"" << exp::jsonEscape(p.config) << "\", "
           << "\"workload\": \"" << exp::jsonEscape(p.workload)
           << "\", "
           << "\"cycle_events\": " << p.cycle.events << ", "
           << "\"hybrid_events\": " << p.hybrid.events << ", "
           << "\"flow_events\": " << p.flow.events << ", "
           << "\"flow_events_eliminated\": "
           << (p.cycle.events > p.flow.events
                   ? p.cycle.events - p.flow.events
                   : 0)
           << ", "
           << "\"cycle_wall_seconds\": " << p.cycle.wallSeconds << ", "
           << "\"hybrid_wall_seconds\": " << p.hybrid.wallSeconds
           << ", "
           << "\"flow_wall_seconds\": " << p.flow.wallSeconds << ", "
           << "\"hybrid_speedup\": "
           << (p.hybrid.wallSeconds > 0
                   ? p.cycle.wallSeconds / p.hybrid.wallSeconds
                   : 0.0)
           << ", "
           << "\"flow_speedup\": "
           << (p.flow.wallSeconds > 0
                   ? p.cycle.wallSeconds / p.flow.wallSeconds
                   : 0.0)
           << ", "
           << "\"hybrid_cycles_relerr\": "
           << relerr(p.hybrid.cycles, p.cycle.cycles) << ", "
           << "\"flow_cycles_relerr\": "
           << relerr(p.flow.cycles, p.cycle.cycles) << ", "
           << "\"hybrid_flow_packets\": " << p.hybrid.flowPackets
           << ", "
           << "\"flow_flow_packets\": " << p.flow.flowPackets << "}";
    }
    os << "\n  ],\n";
    os << "  \"cycle\": {\"events\": " << cyc_events
       << ", \"wall_seconds\": " << cyc_wall
       << ", \"events_per_second\": "
       << eventsPerSecond(cyc_events, cyc_wall) << "},\n";
    os << "  \"hybrid\": {\"events\": " << hyb_events
       << ", \"wall_seconds\": " << hyb_wall
       << ", \"events_per_second\": "
       << eventsPerSecond(hyb_events, hyb_wall)
       << ", \"speedup_vs_cycle\": "
       << (hyb_wall > 0 ? cyc_wall / hyb_wall : 0.0) << "},\n";
    os << "  \"flow\": {\"events\": " << flo_events
       << ", \"wall_seconds\": " << flo_wall
       << ", \"events_per_second\": "
       << eventsPerSecond(flo_events, flo_wall)
       << ", \"events_eliminated\": "
       << (cyc_events > flo_events ? cyc_events - flo_events : 0)
       << ", \"events_eliminated_frac\": "
       << (cyc_events > 0
               ? static_cast<double>(cyc_events > flo_events
                                         ? cyc_events - flo_events
                                         : 0) /
                     static_cast<double>(cyc_events)
               : 0.0)
       << ", \"speedup_vs_cycle\": "
       << (flo_wall > 0 ? cyc_wall / flo_wall : 0.0) << "}\n";
    os << "}\n";

    std::cout << "perf_hotpath --flow: "
              << (conserved ? "conservation exact"
                            : "CONSERVATION BROKEN")
              << ", flow " << (flo_wall > 0 ? cyc_wall / flo_wall : 0.0)
              << "x wall / "
              << (flo_events > 0
                      ? static_cast<double>(cyc_events) /
                            static_cast<double>(flo_events)
                      : 0.0)
              << "x fewer events vs cycle across " << points.size()
              << " points (JSON: " << out_path << ")\n";
    return conserved ? 0 : 1;
}

/**
 * Observability-overhead bench: every grid point twice — tracing
 * disabled vs packet-level tracing + sampling kept in memory — with a
 * hard identity check on the measurements. Writes BENCH_obs.json.
 */
int
runObsBench(const std::string &out_path, bool quick, double scale,
            const std::string &ref_path)
{
    using namespace netcrafter;

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }

    obs::TraceOptions disabled; // level Off: the compiled-in no-op path
    obs::TraceOptions enabled;
    enabled.level = obs::TraceLevel::Packets;
    enabled.sampleInterval = 10'000;

    struct Totals
    {
        std::uint64_t events = 0;
        double wall = 0;
    };
    Totals off_t, on_t;
    std::uint64_t trace_records = 0, trace_dropped = 0, sample_rows = 0;
    bool identical = true;

    // All disabled legs run contiguously before any enabled leg: the
    // enabled runs touch a ~128 MB record buffer each, and interleaving
    // that churn with the disabled measurements used to depress them by
    // far more than the 2% budget the --ref comparison checks.
    std::vector<RunResult> off_results;
    for (const auto &[cfg_name, cfg] : configs)
        for (const auto &app : bench::apps())
            off_results.push_back(
                harness::runWorkload(app, cfg, scale, 1, disabled));

    std::size_t point = 0;
    for (const auto &[cfg_name, cfg] : configs) {
        for (const auto &app : bench::apps()) {
            const RunResult &off = off_results[point++];
            const RunResult on =
                harness::runWorkload(app, cfg, scale, 1, enabled);
            off_t.events += off.events;
            off_t.wall += off.wallSeconds;
            on_t.events += on.events;
            on_t.wall += on.wallSeconds;
            trace_records += on.traceRecords;
            trace_dropped += on.traceDropped;
            sample_rows += on.sampleRows;
            if (!harness::sameMeasurement(off, on)) {
                std::cerr << "perf_hotpath --obs: tracing CHANGED the "
                             "measurement at "
                          << cfg_name << "/" << app << "\n";
                identical = false;
            }
            std::cerr << cfg_name << "/" << app << ": "
                      << eventsPerSecond(off.events, off.wallSeconds)
                      << " ev/s off, "
                      << eventsPerSecond(on.events, on.wallSeconds)
                      << " ev/s on (" << on.traceRecords
                      << " records)\n";
        }
    }

    // Third leg: tracing off but the live-telemetry sampler running
    // (heartbeat stream + armed phase profiling). The sampler only
    // reads relaxed atomics the simulation publishes anyway, so the
    // measurements must stay bit-identical to the disabled leg.
    Totals tel_t;
    bool telemetry_identical = true;
    const std::string heartbeat_path = out_path + ".heartbeat.ndjson";
    {
        obs::TelemetryOptions topts;
        topts.heartbeatPath = heartbeat_path;
        topts.intervalMs = 50;
        obs::Telemetry::instance().start(topts);
    }
    point = 0;
    for (const auto &[cfg_name, cfg] : configs) {
        for (const auto &app : bench::apps()) {
            const RunResult &off = off_results[point++];
            const RunResult tel =
                harness::runWorkload(app, cfg, scale, 1, disabled);
            tel_t.events += tel.events;
            tel_t.wall += tel.wallSeconds;
            if (!harness::sameMeasurement(off, tel)) {
                std::cerr << "perf_hotpath --obs: telemetry CHANGED "
                             "the measurement at "
                          << cfg_name << "/" << app << "\n";
                telemetry_identical = false;
            }
        }
    }
    obs::Telemetry::instance().stop(); // final heartbeat lands first
    const std::uint64_t heartbeat_records =
        obs::Telemetry::instance().heartbeats();

    // Optional reference: the disabled path against a plain
    // BENCH_hotpath.json from the same machine. Informational — wall
    // clock noise on shared CI runners is larger than the 2% budget,
    // so the hard gate stays measurements_identical.
    double ref_evps = 0;
    bool have_ref = false, within_2pct = false;
    if (!ref_path.empty()) {
        std::ifstream is(ref_path);
        std::ostringstream text;
        text << is.rdbuf();
        obs::JsonValue root;
        std::string err;
        if (is && obs::parseJson(text.str(), root, &err)) {
            if (const obs::JsonValue *v =
                    root.find("events_per_second");
                v != nullptr && v->isNumber()) {
                ref_evps = v->number;
                have_ref = ref_evps > 0;
            }
        }
        if (!have_ref) {
            std::cerr << "perf_hotpath --obs: cannot read "
                         "events_per_second from '"
                      << ref_path << "' (ignored)\n";
        } else {
            within_2pct = eventsPerSecond(off_t.events, off_t.wall) >=
                          0.98 * ref_evps;
        }
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"perf_obs\",\n";
    os << "  \"workload_set\": \"fig14\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << harness::envScale() << ",\n";
    os << "  \"trace_level\": \""
       << obs::TraceOptions::levelName(enabled.level) << "\",\n";
    os << "  \"sample_interval\": " << enabled.sampleInterval << ",\n";
    os << "  \"measurements_identical\": "
       << (identical ? "true" : "false") << ",\n";
    os << "  \"telemetry_identical\": "
       << (telemetry_identical ? "true" : "false") << ",\n";
    os << "  \"disabled\": {\"events\": " << off_t.events
       << ", \"wall_seconds\": " << off_t.wall
       << ", \"events_per_second\": "
       << eventsPerSecond(off_t.events, off_t.wall) << "},\n";
    os << "  \"enabled\": {\"events\": " << on_t.events
       << ", \"wall_seconds\": " << on_t.wall
       << ", \"events_per_second\": "
       << eventsPerSecond(on_t.events, on_t.wall)
       << ", \"trace_records\": " << trace_records
       << ", \"trace_dropped\": " << trace_dropped
       << ", \"sample_rows\": " << sample_rows << "},\n";
    os << "  \"telemetry\": {\"events\": " << tel_t.events
       << ", \"wall_seconds\": " << tel_t.wall
       << ", \"events_per_second\": "
       << eventsPerSecond(tel_t.events, tel_t.wall)
       << ", \"heartbeat_records\": " << heartbeat_records
       << ", \"heartbeat_path\": \""
       << exp::jsonEscape(heartbeat_path) << "\"},\n";
    os << "  \"enabled_over_disabled_wall\": "
       << (off_t.wall > 0 ? on_t.wall / off_t.wall : 0.0) << ",\n";
    os << "  \"telemetry_over_disabled_wall\": "
       << (off_t.wall > 0 ? tel_t.wall / off_t.wall : 0.0) << ",\n";
    os << "  \"ref\": "
       << (ref_path.empty() ? std::string("null")
                            : "\"" + exp::jsonEscape(ref_path) + "\"")
       << ",\n";
    os << "  \"ref_events_per_second\": " << ref_evps << ",\n";
    os << "  \"disabled_within_2pct_of_ref\": "
       << (have_ref && within_2pct ? "true" : "false") << "\n";
    os << "}\n";

    std::cout << "perf_hotpath --obs: "
              << (identical && telemetry_identical
                      ? "measurements identical"
                      : "MEASUREMENTS DIVERGED")
              << ", " << eventsPerSecond(off_t.events, off_t.wall)
              << " ev/s disabled vs "
              << eventsPerSecond(on_t.events, on_t.wall)
              << " ev/s traced vs "
              << eventsPerSecond(tel_t.events, tel_t.wall)
              << " ev/s telemetry, " << trace_records << " records, "
              << heartbeat_records << " heartbeats (JSON: " << out_path
              << ")\n";
    return identical && telemetry_identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netcrafter;

    std::string out_path;
    std::string ref_path;
    bool quick = false;
    bool shard_bench = false;
    bool adaptive = false;
    bool worksteal_bench = false;
    bool obs_bench = false;
    bool flow_bench = false;
    bool relaxed_bench = false;
    double scale = 1.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--ref" && i + 1 < argc) {
            ref_path = argv[++i];
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--shards") {
            shard_bench = true;
        } else if (arg == "--adaptive") {
            adaptive = true;
        } else if (arg == "--worksteal") {
            worksteal_bench = true;
        } else if (arg == "--obs") {
            obs_bench = true;
        } else if (arg == "--flow") {
            flow_bench = true;
        } else if (arg == "--relaxed") {
            relaxed_bench = true;
        } else if (arg == "--scale" && i + 1 < argc) {
            const std::string value = argv[++i];
            char *end = nullptr;
            scale = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() || scale <= 0.0 ||
                !std::isfinite(scale)) {
                std::cerr << "perf_hotpath: --scale must be a positive "
                             "finite number, got '" << value << "'\n";
                return 1;
            }
        } else {
            std::cerr << "usage: perf_hotpath [--out FILE] [--quick]"
                         " [--scale S] [--shards [--adaptive]]"
                         " [--worksteal] [--obs [--ref FILE]] [--flow]"
                         " [--relaxed]\n";
            return 2;
        }
    }
    if (adaptive && !shard_bench) {
        std::cerr << "perf_hotpath: --adaptive requires --shards\n";
        return 2;
    }
    if (worksteal_bench && (shard_bench || obs_bench)) {
        std::cerr << "perf_hotpath: --worksteal excludes --shards and "
                     "--obs\n";
        return 2;
    }
    if (flow_bench && (shard_bench || obs_bench || worksteal_bench)) {
        std::cerr << "perf_hotpath: --flow excludes the other modes\n";
        return 2;
    }
    if (relaxed_bench &&
        (shard_bench || obs_bench || worksteal_bench || flow_bench)) {
        std::cerr << "perf_hotpath: --relaxed excludes the other "
                     "modes\n";
        return 2;
    }
    if (out_path.empty()) {
        out_path = shard_bench ? (adaptive ? "BENCH_adaptive.json"
                                           : "BENCH_parallel.json")
                   : worksteal_bench ? "BENCH_worksteal.json"
                   : obs_bench       ? "BENCH_obs.json"
                   : flow_bench      ? "BENCH_flow.json"
                   : relaxed_bench   ? "BENCH_relaxed.json"
                                     : "BENCH_hotpath.json";
    }
    if (shard_bench)
        return runShardBench(out_path, quick, scale, adaptive);
    if (worksteal_bench)
        return runWorkstealBench(out_path, quick, scale);
    if (obs_bench)
        return runObsBench(out_path, quick, scale, ref_path);
    if (flow_bench)
        return runFlowBench(out_path, quick, scale);
    if (relaxed_bench)
        return runRelaxedBench(out_path, quick, scale);

    std::vector<std::pair<std::string, SystemConfig>> configs = {
        {"base", config::baselineConfig()},
        {"full", bench::fullNetcrafter()},
    };
    if (!quick) {
        configs.insert(configs.begin() + 1,
                       {"stitch", bench::stitchSelective32()});
        configs.insert(configs.begin() + 2,
                       {"trim", bench::stitchTrim()});
        configs.push_back({"sector", config::sectorCacheConfig(16)});
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Point> points;
    std::uint64_t total_events = 0;
    double total_wall = 0;
    for (const auto &[cfg_name, cfg] : configs) {
        for (const auto &app : bench::apps()) {
            Point p;
            p.config = cfg_name;
            p.workload = app;
            p.result = harness::runWorkload(app, cfg, scale);
            total_events += p.result.events;
            total_wall += p.result.wallSeconds;
            std::cerr << cfg_name << "/" << app << ": "
                      << p.result.events << " events in "
                      << p.result.wallSeconds << "s ("
                      << eventsPerSecond(p.result.events,
                                         p.result.wallSeconds)
                      << " ev/s)\n";
            points.push_back(std::move(p));
        }
    }
    const double harness_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"perf_hotpath\",\n";
    os << "  \"workload_set\": \"fig14\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << harness::envScale() << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"config\": \"" << exp::jsonEscape(p.config) << "\", "
           << "\"workload\": \"" << exp::jsonEscape(p.workload)
           << "\", "
           << "\"cycles\": " << p.result.cycles << ", "
           << "\"events\": " << p.result.events << ", "
           << "\"wall_seconds\": " << p.result.wallSeconds << ", "
           << "\"events_per_second\": "
           << eventsPerSecond(p.result.events, p.result.wallSeconds)
           << "}";
    }
    os << "\n  ],\n";
    os << "  \"total_events\": " << total_events << ",\n";
    os << "  \"total_wall_seconds\": " << total_wall << ",\n";
    os << "  \"harness_wall_seconds\": " << harness_wall << ",\n";
    os << "  \"events_per_second\": "
       << eventsPerSecond(total_events, total_wall) << "\n";
    os << "}\n";

    std::cout << "perf_hotpath: " << total_events << " events in "
              << total_wall << "s -> "
              << eventsPerSecond(total_events, total_wall)
              << " events/sec (" << points.size() << " points, JSON: "
              << out_path << ")\n";
    return 0;
}
