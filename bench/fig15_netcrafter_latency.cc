/**
 * @file
 * Figure 15: average inter-GPU-cluster memory access latency under the
 * baseline versus full NetCrafter — traffic reduction translates into
 * lower queueing latency.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 15",
                  "inter-cluster read latency: baseline vs NetCrafter");

    harness::Table table({"app", "baseline (cyc)", "NetCrafter (cyc)",
                          "ratio"});
    std::vector<double> ratios;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        auto nc = harness::runWorkload(app, bench::fullNetcrafter());
        if (base.interReads == 0) {
            table.addRow({app, "-", "-", "-"});
            continue;
        }
        const double ratio =
            nc.avgInterReadLatency / base.avgInterReadLatency;
        ratios.push_back(ratio);
        table.addRow({app,
                      harness::Table::fmt(base.avgInterReadLatency, 0),
                      harness::Table::fmt(nc.avgInterReadLatency, 0),
                      harness::Table::fmt(ratio)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean latency ratio (NetCrafter / baseline): "
              << harness::Table::fmt(harness::geomean(ratios))
              << "  (paper: below 1 for bandwidth-bound apps)\n";
    return 0;
}
