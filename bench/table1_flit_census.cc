/**
 * @file
 * Table 1: categorizing 16B flits by type and size. Purely structural —
 * segments one packet of each type and reports occupied / required /
 * padded bytes and flit counts, which must match the paper exactly.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "src/noc/flit.hh"
#include "src/noc/packet.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Table 1", "16B flit census by packet type");

    harness::Table table({"Request Type", "Bytes Occupied",
                          "Bytes Required", "Bytes Padded",
                          "Flits Occupied"});

    const noc::PacketType types[] = {
        noc::PacketType::ReadReq,      noc::PacketType::WriteReq,
        noc::PacketType::PageTableReq, noc::PacketType::ReadRsp,
        noc::PacketType::WriteRsp,     noc::PacketType::PageTableRsp,
    };

    for (noc::PacketType type : types) {
        auto pkt = noc::makePacket(type, 0, 1, 0x1000);
        auto flits = noc::segmentPacket(pkt, noc::kDefaultFlitBytes);
        std::uint32_t occupied = 0;
        std::uint32_t required = pkt->totalBytes();
        for (const auto &f : flits)
            occupied += f->capacity;
        table.addRow({noc::packetTypeName(type), std::to_string(occupied),
                      std::to_string(required),
                      std::to_string(occupied - required),
                      std::to_string(flits.size())});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: ReadReq 16/12/4/1, WriteReq "
                 "80/76/4/5, PTReq 16/12/4/1,\nReadRsp 80/68/12/5, "
                 "WriteRsp 16/4/12/1, PTRsp 16/12/4/1.\n";
    return 0;
}
