/**
 * @file
 * Figure 6: distribution of lower-bandwidth-network flits by padding
 * level under the baseline. The paper finds on average 42% of flits
 * carry either ~25% or ~75% padded (redundant) bytes — the headroom
 * Stitching exploits.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 6",
                  "flits with ~25% / ~75% padding on the inter-cluster "
                  "network (baseline)");

    harness::Table table({"app", "~25% padded", "~75% padded",
                          "25%+75% total"});
    double sum = 0;
    int n = 0;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        if (base.interFlits == 0) {
            table.addRow({app, "-", "-", "- (no inter-cluster flits)"});
            continue;
        }
        sum += base.paddedFlitFraction;
        ++n;
        table.addRow({app,
                      harness::Table::pct(base.quarterPaddedFraction),
                      harness::Table::pct(
                          base.threeQuarterPaddedFraction),
                      harness::Table::pct(base.paddedFlitFraction)});
    }
    table.print(std::cout);
    if (n > 0) {
        std::cout << "\nmean fraction of flits 25%- or 75%-padded: "
                  << harness::Table::pct(sum / n)
                  << "  (paper: ~42% average)\n";
    }
    return 0;
}
