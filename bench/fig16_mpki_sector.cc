/**
 * @file
 * Figure 16: L1 cache MPKI of NetCrafter's Trimming (sector fills only
 * for inter-cluster responses) versus the 16B sector-cache design
 * (sector fills everywhere). Trimming preserves more spatial locality
 * and so raises MPKI less.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 16",
                  "L1 MPKI: baseline vs Trimming vs 16B sector cache");

    harness::Table table(
        {"app", "baseline", "Trimming", "SectorCache16B"});

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        config::SystemConfig trim_cfg = config::baselineConfig();
        trim_cfg.netcrafter.trimming = true;
        trim_cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
        auto trim = harness::runWorkload(app, trim_cfg);
        auto sector =
            harness::runWorkload(app, config::sectorCacheConfig(16));

        table.addRow({app, harness::Table::fmt(base.l1Mpki, 1),
                      harness::Table::fmt(trim.l1Mpki, 1),
                      harness::Table::fmt(sector.l1Mpki, 1)});
    }
    table.print(std::cout);
    std::cout << "\n(paper: sector cache's MPKI exceeds Trimming's for "
                 "apps with coarse-grained reuse, since Trimming only "
                 "sectors inter-cluster fills)\n";
    return 0;
}
