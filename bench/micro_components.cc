/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * event queue, RNG, packet segmentation, stitching engine, cluster
 * queue, tag arrays, and the coalescer. These guard the simulator's own
 * performance (host events/second), not modelled time.
 */

#include <benchmark/benchmark.h>

#include "src/core/cluster_queue.hh"
#include "src/core/stitch_engine.hh"
#include "src/gpu/coalescer.hh"
#include "src/mem/tag_array.hh"
#include "src/noc/flit.hh"
#include "src/sim/event.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"

namespace {

using namespace netcrafter;

class NopEvent : public sim::Event
{
  public:
    void process() override {}
};

void
BM_EventQueuePushPop(benchmark::State &state)
{
    sim::EventQueue q;
    Pcg32 rng(1);
    NopEvent events[64];
    Tick drain_point = 0;
    for (auto _ : state) {
        for (auto &ev : events)
            q.schedule(ev, drain_point + rng.below(1000));
        while (!q.empty()) {
            sim::Event *ev = q.pop();
            drain_point = ev->when();
            benchmark::DoNotOptimize(ev);
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void
BM_Pcg32(benchmark::State &state)
{
    Pcg32 rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Pcg32);

void
BM_SegmentReadRsp(benchmark::State &state)
{
    for (auto _ : state) {
        auto pkt = noc::makePacket(noc::PacketType::ReadRsp, 0, 1, 64);
        benchmark::DoNotOptimize(noc::segmentPacket(pkt, 16));
    }
}
BENCHMARK(BM_SegmentReadRsp);

void
BM_StitchAndUnstitch(benchmark::State &state)
{
    core::StitchEngine engine;
    for (auto _ : state) {
        auto rsp = noc::makePacket(noc::PacketType::ReadRsp, 0, 1, 64);
        auto flits = noc::segmentPacket(rsp, 16);
        auto req = noc::makePacket(noc::PacketType::ReadReq, 0, 1, 128);
        auto req_flit = noc::segmentPacket(req, 16).front();
        auto &tail = flits.back();
        engine.stitch(*tail, req_flit);
        benchmark::DoNotOptimize(engine.unstitch(tail));
    }
}
BENCHMARK(BM_StitchAndUnstitch);

void
BM_ClusterQueueCycle(benchmark::State &state)
{
    core::ClusterQueue cq(1024, {1});
    Pcg32 rng(3);
    for (auto _ : state) {
        for (int i = 0; i < 16 && !cq.hasSpace(1); ++i)
            cq.pop(*cq.pickNext(0, false));
        auto pkt = noc::makePacket(rng.chance(0.5)
                                       ? noc::PacketType::ReadReq
                                       : noc::PacketType::WriteRsp,
                                   0, 2, rng.next());
        cq.push(1, noc::segmentPacket(pkt, 16).front());
        auto pick = cq.pickNext(0, false);
        if (pick) {
            auto parent = cq.front(*pick);
            benchmark::DoNotOptimize(
                cq.takeCandidate(1, parent->freeBytes(), 64,
                                 parent.get()));
            benchmark::DoNotOptimize(cq.pop(*pick));
        }
    }
}
BENCHMARK(BM_ClusterQueueCycle);

void
BM_TagArrayFillLookup(benchmark::State &state)
{
    mem::TagArray tags(64 * 1024, 4, 64, 16);
    Pcg32 rng(5);
    for (auto _ : state) {
        const Addr line = static_cast<Addr>(rng.below(4096)) * 64;
        tags.fill(line, mem::fullMask(4));
        benchmark::DoNotOptimize(tags.covers(line, 0x1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayFillLookup);

void
BM_CoalesceRandom(benchmark::State &state)
{
    Pcg32 rng(9);
    workloads::Instruction instr;
    instr.elemBytes = 4;
    for (auto _ : state) {
        state.PauseTiming();
        for (auto &a : instr.addrs)
            a = 0x100000000ull + rng.below(1 << 24) * 4;
        state.ResumeTiming();
        benchmark::DoNotOptimize(gpu::coalesce(instr));
    }
}
BENCHMARK(BM_CoalesceRandom);

void
BM_CoalesceAdjacent(benchmark::State &state)
{
    workloads::Instruction instr;
    instr.elemBytes = 4;
    for (std::uint32_t i = 0; i < kWavefrontSize; ++i)
        instr.addrs[i] = 0x100000000ull + i * 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(gpu::coalesce(instr));
}
BENCHMARK(BM_CoalesceAdjacent);

} // namespace

BENCHMARK_MAIN();
