/**
 * @file
 * Figure 22: full NetCrafter speedup across inter/intra-cluster
 * bandwidth ratios and absolute values, including a homogeneous
 * 32/32 GB/s configuration. Gains persist everywhere and are largest
 * when bandwidth is most constrained.
 *
 * The sweep is defined in src/exp/figures.cc; prefer
 * `netcrafter-sweep fig22`, which shares simulations across figures.
 */

#include "src/exp/figures.hh"

int
main(int argc, char **argv)
{
    return netcrafter::exp::figureMain("fig22", argc, argv);
}
