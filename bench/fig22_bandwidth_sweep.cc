/**
 * @file
 * Figure 22: full NetCrafter speedup across inter/intra-cluster
 * bandwidth ratios and absolute values, including a homogeneous
 * 32/32 GB/s configuration. Gains persist everywhere and are largest
 * when bandwidth is most constrained.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 22",
                  "NetCrafter speedup across bandwidth configurations");

    struct BwPoint
    {
        const char *label;
        double intra;
        double inter;
    };
    const std::vector<BwPoint> points = {
        {"128:16 (8:1, baseline)", 128, 16},
        {"256:32 (8:1)", 256, 32},
        {"512:64 (8:1)", 512, 64},
        {"128:32 (4:1)", 128, 32},
        {"128:64 (2:1)", 128, 64},
        {"32:32 (homogeneous)", 32, 32},
    };

    std::vector<std::string> headers = {"app"};
    for (const auto &p : points)
        headers.push_back(p.label);
    harness::Table table(headers);

    std::vector<std::vector<double>> speedups(points.size());

    for (const auto &app : bench::apps()) {
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < points.size(); ++i) {
            config::SystemConfig base = config::baselineConfig();
            base.intraClusterGBps = points[i].intra;
            base.interClusterGBps = points[i].inter;
            config::SystemConfig nc = bench::fullNetcrafter();
            nc.intraClusterGBps = points[i].intra;
            nc.interClusterGBps = points[i].inter;

            auto b = harness::runWorkload(app, base);
            auto v = harness::runWorkload(app, nc);
            speedups[i].push_back(bench::speedup(b, v));
            row.push_back(harness::Table::fmt(speedups[i].back(), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\ngeomean per configuration:";
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::cout << "  [" << points[i].label << "] "
                  << harness::Table::fmt(
                         harness::geomean(speedups[i]), 3);
    }
    std::cout << "\n(paper: consistent gains across every ratio, "
                 "largest under the tightest bandwidth)\n";
    return 0;
}
