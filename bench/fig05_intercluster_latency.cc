/**
 * @file
 * Figure 5: average inter-GPU-cluster memory access latency of the
 * ideal configuration normalized to the non-uniform baseline (lower is
 * better; the paper shows large reductions for congested apps).
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 5",
                  "inter-cluster read latency, ideal normalized to "
                  "non-uniform");

    harness::Table table({"app", "baseline (cyc)", "ideal (cyc)",
                          "ideal / baseline"});
    std::vector<double> ratios;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        auto ideal = harness::runWorkload(app, config::idealConfig());
        if (base.interReads == 0) {
            table.addRow({app, "-", "-", "- (no inter-cluster reads)"});
            continue;
        }
        const double ratio =
            ideal.avgInterReadLatency / base.avgInterReadLatency;
        ratios.push_back(ratio);
        table.addRow({app,
                      harness::Table::fmt(base.avgInterReadLatency, 0),
                      harness::Table::fmt(ideal.avgInterReadLatency, 0),
                      harness::Table::fmt(ratio)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean latency ratio: "
              << harness::Table::fmt(harness::geomean(ratios))
              << "  (paper: well below 1 for congested apps)\n";
    return 0;
}
