/**
 * @file
 * Figure 18: Stitching alone and Stitching + (non-selective) Flit
 * Pooling across pooling windows of 32-128 cycles, normalized to the
 * baseline. The paper finds 32 cycles the sweet spot, with some apps
 * (e.g. PR) degrading because PTW-critical flits also get pooled.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 18",
                  "Stitching + Flit Pooling sweep (non-selective)");

    const std::vector<Tick> windows = {32, 64, 96, 128};
    std::vector<std::string> headers = {"app", "stitch only"};
    for (Tick w : windows)
        headers.push_back("pool " + std::to_string(w));
    harness::Table table(headers);

    std::vector<std::vector<double>> speedups(windows.size() + 1);

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        std::vector<std::string> row{app};

        auto alone =
            harness::runWorkload(app, config::stitchingConfig(false));
        speedups[0].push_back(bench::speedup(base, alone));
        row.push_back(harness::Table::fmt(speedups[0].back(), 3));

        for (std::size_t i = 0; i < windows.size(); ++i) {
            auto pooled = harness::runWorkload(
                app, config::stitchingConfig(true, false, windows[i]));
            speedups[i + 1].push_back(bench::speedup(base, pooled));
            row.push_back(
                harness::Table::fmt(speedups[i + 1].back(), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\ngeomean: stitch-only "
              << harness::Table::fmt(harness::geomean(speedups[0]), 3);
    for (std::size_t i = 0; i < windows.size(); ++i) {
        std::cout << ", pool-" << windows[i] << " "
                  << harness::Table::fmt(
                         harness::geomean(speedups[i + 1]), 3);
    }
    std::cout << "\n(paper: 32 cycles is the sweet spot; larger windows "
                 "add latency for no stitching gain)\n";
    return 0;
}
