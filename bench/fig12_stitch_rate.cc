/**
 * @file
 * Figure 12: percentage of flits stitched before and after applying
 * Flit Pooling (32 cycles) on top of Stitching. Pooling raises the
 * stitched fraction by giving candidates time to arrive.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 12",
                  "flits stitched: Stitching alone vs + Flit Pooling");

    harness::Table table({"app", "stitch only", "stitch + pooling(32)"});
    double sum_alone = 0, sum_pool = 0;
    int n = 0;

    for (const auto &app : bench::apps()) {
        auto alone = harness::runWorkload(
            app, config::stitchingConfig(false));
        auto pooled = harness::runWorkload(
            app, config::stitchingConfig(true, false, 32));
        if (alone.interFlits == 0) {
            table.addRow({app, "-", "-"});
            continue;
        }
        sum_alone += alone.stitchedFraction;
        sum_pool += pooled.stitchedFraction;
        ++n;
        table.addRow({app, harness::Table::pct(alone.stitchedFraction),
                      harness::Table::pct(pooled.stitchedFraction)});
    }
    table.print(std::cout);
    if (n > 0) {
        std::cout << "\nmean stitched fraction: alone "
                  << harness::Table::pct(sum_alone / n) << ", + pooling "
                  << harness::Table::pct(sum_pool / n)
                  << "  (paper: pooling significantly raises the "
                     "stitched share)\n";
    }
    return 0;
}
