/**
 * @file
 * Figure 8: performance after prioritizing read-PTW-related accesses on
 * the lower-bandwidth network versus prioritizing an equal fraction of
 * data accesses. The paper shows PTW prioritization helps while data
 * prioritization hurts — Observation 3.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 8",
                  "prioritizing PTW-related vs an equal share of data "
                  "accesses");

    harness::Table table({"app", "prioritize PTW", "prioritize data"});
    std::vector<double> ptw_speedups, data_speedups;

    for (const auto &app : bench::apps()) {
        // Reference: the plain baseline whose inter-cluster egress is a
        // FIFO output buffer, as in the paper's characterization.
        auto base = harness::runWorkload(app, config::baselineConfig());

        config::SystemConfig ptw_cfg = config::baselineConfig();
        ptw_cfg.netcrafter.sequencing =
            config::SequencingMode::PrioritizePtw;
        auto ptw = harness::runWorkload(app, ptw_cfg);

        config::SystemConfig data_cfg = config::baselineConfig();
        data_cfg.netcrafter.sequencing =
            config::SequencingMode::PrioritizeData;
        data_cfg.netcrafter.priorityDataFraction =
            base.ptwByteFraction; // "same fraction" as PTW traffic
        auto data = harness::runWorkload(app, data_cfg);

        const double s_ptw = bench::speedup(base, ptw);
        const double s_data = bench::speedup(base, data);
        ptw_speedups.push_back(s_ptw);
        data_speedups.push_back(s_data);
        table.addRow({app, harness::Table::fmt(s_ptw, 3),
                      harness::Table::fmt(s_data, 3)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean: prioritize-PTW "
              << harness::Table::fmt(harness::geomean(ptw_speedups), 3)
              << "x, prioritize-data "
              << harness::Table::fmt(harness::geomean(data_speedups), 3)
              << "x  (paper: PTW > 1 > data)\n";
    return 0;
}
