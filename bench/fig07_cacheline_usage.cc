/**
 * @file
 * Figure 7: categorization of inter-GPU-cluster read requests by the
 * number of cache-line bytes the requesting wavefront actually needs.
 * The paper shows many applications need <=16 bytes of the 64B line —
 * the opportunity Trimming exploits.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 7",
                  "inter-cluster read requests by bytes needed from the "
                  "64B line (baseline)");

    harness::Table table({"app", "<=16B", "17-32B", "33-48B", "49-63B",
                          "64B"});
    double sum16 = 0;
    int n = 0;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        if (base.interReads == 0 && base.bytesNeededFrac[0] == 0 &&
            base.bytesNeededFrac[4] == 0) {
            table.addRow({app, "-", "-", "-", "-", "-"});
            continue;
        }
        sum16 += base.bytesNeededFrac[0];
        ++n;
        std::vector<std::string> row{app};
        for (double f : base.bytesNeededFrac)
            row.push_back(harness::Table::pct(f));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    if (n > 0) {
        std::cout << "\nmean fraction of requests needing <=16B: "
                  << harness::Table::pct(sum16 / n)
                  << "  (paper: large for random/gather/scatter apps, "
                     "near zero for adjacent/DNN)\n";
    }
    return 0;
}
