/**
 * @file
 * Serving-saturation performance harness: runs the open-loop serving
 * scenario (Poisson arrivals, default class mix) at several offered
 * loads under the baseline and full-NetCrafter configurations, checks
 * the determinism contract (serial vs 2-shard bit-identity, ordered
 * percentiles), and reports simulator throughput as machine-readable
 * JSON.
 *
 * The JSON seeds the serving leg of the repo's perf trajectory: each
 * BENCH_serve.json entry is one (config, load) point with its tail
 * latencies and host-side cost. Compare "events_per_second" across
 * commits to track serving-path regressions; the latency percentiles
 * themselves must stay bit-identical.
 *
 * Usage:
 *   serve_saturation [--out FILE] [--quick] [--scale S]
 *
 *   --out FILE   write JSON to FILE (default BENCH_serve.json)
 *   --quick      two loads instead of four (CI smoke)
 *   --scale S    extra footprint multiplier on top of NETCRAFTER_SCALE
 *
 * The default scenario keeps the measurement window short (2k warmup /
 * 8k measure) so the CI smoke stays cheap — short enough that neither
 * curve reaches its saturation knee. Set NETCRAFTER_SERVE_LONG=1 when
 * running outside CI to extend the window (5k/60k) and sweep loads
 * high enough that the knee (first load whose aggregate p99 exceeds
 * 3x the low-load p99) is actually reachable; the per-config knee is
 * reported in the JSON either way ("null" when not reached).
 *
 * Exits non-zero when any point breaks bit-identity across shard
 * counts or reports unordered percentiles.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "src/exp/export.hh"
#include "src/serve/serve_config.hh"
#include "src/sim/logging.hh"

namespace {

using namespace netcrafter;

struct Point
{
    std::string config;
    double load = 0;
    harness::RunResult serial;
    double wallSerial = 0;
    double wallSharded = 0;
    bool identical = false;
    bool ordered = false;
};

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * NETCRAFTER_SERVE_LONG: opt into the knee-reaching scenario (longer
 * measurement window, higher loads). Validated like every other env
 * knob — garbage dies instead of silently running the short window.
 */
bool
serveLongFromEnv()
{
    const char *text = std::getenv("NETCRAFTER_SERVE_LONG");
    if (text == nullptr || *text == '\0')
        return false;
    if (std::strcmp(text, "1") == 0 || std::strcmp(text, "on") == 0 ||
        std::strcmp(text, "true") == 0)
        return true;
    if (std::strcmp(text, "0") == 0 || std::strcmp(text, "off") == 0 ||
        std::strcmp(text, "false") == 0)
        return false;
    NC_FATAL("NETCRAFTER_SERVE_LONG must be one of 0/1/on/off/"
             "true/false, got '", text, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_serve.json";
    bool quick = false;
    double scale = 1.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scale" && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else {
            std::cerr << "usage: serve_saturation [--out FILE] "
                         "[--quick] [--scale S]\n";
            return 1;
        }
    }

    const bool long_window = serveLongFromEnv();
    // The determinism leg runs every point at 2 shards.
    const std::string note =
        bench::undersubscribedNote("serve_saturation", 2);

    serve::ServeConfig sc;
    sc.enabled = true;
    sc.arrival = serve::ArrivalKind::Poisson;
    sc.seed = 1;
    sc.warmupTicks = long_window ? 5'000 : 2'000;
    sc.measureTicks = long_window ? 60'000 : 8'000;

    std::vector<double> loads;
    if (long_window)
        loads = quick ? std::vector<double>{2, 8, 16}
                      : std::vector<double>{2, 4, 6, 8, 10, 12, 14, 16};
    else
        loads = quick ? std::vector<double>{2, 6}
                      : std::vector<double>{2, 4, 6, 8};
    const std::vector<std::pair<std::string, config::SystemConfig>>
        configs = {{"baseline", config::baselineConfig()},
                   {"netcrafter", bench::fullNetcrafter()}};

    bool all_ok = true;
    std::vector<Point> points;
    for (const auto &[label, cfg] : configs) {
        for (double load : loads) {
            serve::ServeConfig point_sc = sc;
            point_sc.offeredLoad = load;

            Point p;
            p.config = label;
            p.load = load;

            auto t0 = std::chrono::steady_clock::now();
            p.serial = harness::runServe(point_sc, cfg, scale, 1);
            p.wallSerial = seconds(t0);

            t0 = std::chrono::steady_clock::now();
            const harness::RunResult sharded =
                harness::runServe(point_sc, cfg, scale, 2);
            p.wallSharded = seconds(t0);

            p.identical = harness::sameMeasurement(p.serial, sharded);
            const auto &all = p.serial.serveClasses[3];
            p.ordered = all.p50 <= all.p99 && all.p99 <= all.p999;

            if (!p.identical)
                std::cerr << "serve_saturation: " << label << " load "
                          << load
                          << " diverged between 1 and 2 shards\n";
            if (!p.ordered)
                std::cerr << "serve_saturation: " << label << " load "
                          << load << " percentiles unordered: p50="
                          << all.p50 << " p99=" << all.p99 << " p999="
                          << all.p999 << "\n";
            all_ok = all_ok && p.identical && p.ordered;

            std::cerr << label << " load " << load << ": p99="
                      << all.p99 << " xput=" << p.serial.serveThroughput
                      << " (" << p.wallSerial << "s serial, "
                      << p.wallSharded << "s 2-shard)\n";
            points.push_back(std::move(p));
        }
    }

    // Per-config knee, same rule as exp::runServeCurve: the first load
    // whose aggregate p99 exceeds 3x the lowest-load p99 of its curve.
    // Only the long-window scenario sweeps far enough to reach it.
    std::vector<std::pair<std::string, double>> knees;
    for (const auto &[label, cfg] : configs) {
        (void)cfg;
        double base_p99 = 0;
        double knee = 0;
        for (const Point &p : points) {
            if (p.config != label)
                continue;
            const auto p99 =
                static_cast<double>(p.serial.serveClasses[3].p99);
            if (p.load == loads.front())
                base_p99 = p99;
            if (base_p99 > 0 && p99 > 3.0 * base_p99 && knee == 0)
                knee = p.load;
        }
        knees.emplace_back(label, knee);
        if (knee > 0)
            std::cerr << "knee " << label << ": " << knee
                      << " req/kcycle\n";
    }

    std::ofstream os(out_path);
    if (!os) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 1;
    }
    const unsigned host_cpus = netcrafter::bench::hostCpus();
    os.precision(17);
    os << "{\n";
    os << "  \"bench\": \"serve_saturation\",\n";
    os << "  \"arrival\": \"poisson\",\n";
    os << "  \"mix\": \"" << exp::jsonEscape(sc.mix.toString())
       << "\",\n";
    os << "  \"warmup_ticks\": " << sc.warmupTicks << ",\n";
    os << "  \"measure_ticks\": " << sc.measureTicks << ",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"long_window\": " << (long_window ? "true" : "false")
       << ",\n";
    os << "  \"knee\": {";
    for (std::size_t i = 0; i < knees.size(); ++i) {
        os << (i ? ", " : "") << "\"" << exp::jsonEscape(knees[i].first)
           << "\": ";
        if (knees[i].second > 0)
            os << knees[i].second;
        else
            os << "null";
    }
    os << "},\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"env_scale\": " << harness::envScale() << ",\n";
    os << "  \"host_cpus\": " << host_cpus << ",\n";
    os << "  \"notes\": \"" << exp::jsonEscape(note) << "\",\n";
    os << "  \"shard_identical\": " << (all_ok ? "true" : "false")
       << ",\n";
    os << "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const auto &all = p.serial.serveClasses[3];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"config\": \"" << exp::jsonEscape(p.config) << "\", "
           << "\"offered_load\": " << p.load << ", "
           << "\"injected\": " << p.serial.serveInjected << ", "
           << "\"measured\": " << p.serial.serveMeasured << ", "
           << "\"throughput\": " << p.serial.serveThroughput << ", "
           << "\"p50\": " << all.p50 << ", "
           << "\"p99\": " << all.p99 << ", "
           << "\"p999\": " << all.p999 << ", "
           << "\"events\": " << p.serial.events << ", "
           << "\"cycles\": " << p.serial.cycles << ", "
           << "\"wall_seconds\": " << p.wallSerial << ", "
           << "\"wall_seconds_2shard\": " << p.wallSharded << ", "
           << "\"events_per_second\": "
           << (p.wallSerial > 0
                   ? static_cast<double>(p.serial.events) / p.wallSerial
                   : 0.0)
           << ", "
           << "\"shard_identical\": "
           << (p.identical ? "true" : "false") << "}";
    }
    os << "\n  ]\n}\n";

    std::cout << "serve_saturation: " << points.size() << " points, "
              << (all_ok ? "shard-identical and ordered"
                         : "DETERMINISM VIOLATION")
              << ", host_cpus=" << host_cpus << " (JSON: " << out_path
              << ")\n";
    return all_ok ? 0 : 1;
}
