/**
 * @file
 * Figure 19: Stitching + *Selective* Flit Pooling (PTW-related flits
 * exempt) across 32-128 cycle windows. Selectivity removes the
 * latency-criticality penalty that hurt PR/SYR2K in Figure 18.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 19",
                  "Stitching + Selective Flit Pooling sweep");

    const std::vector<Tick> windows = {32, 64, 96, 128};
    std::vector<std::string> headers = {"app", "stitch only"};
    for (Tick w : windows)
        headers.push_back("selpool " + std::to_string(w));
    harness::Table table(headers);

    std::vector<std::vector<double>> speedups(windows.size() + 1);

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        std::vector<std::string> row{app};

        auto alone =
            harness::runWorkload(app, config::stitchingConfig(false));
        speedups[0].push_back(bench::speedup(base, alone));
        row.push_back(harness::Table::fmt(speedups[0].back(), 3));

        for (std::size_t i = 0; i < windows.size(); ++i) {
            auto pooled = harness::runWorkload(
                app, config::stitchingConfig(true, true, windows[i]));
            speedups[i + 1].push_back(bench::speedup(base, pooled));
            row.push_back(
                harness::Table::fmt(speedups[i + 1].back(), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\ngeomean: stitch-only "
              << harness::Table::fmt(harness::geomean(speedups[0]), 3);
    for (std::size_t i = 0; i < windows.size(); ++i) {
        std::cout << ", selpool-" << windows[i] << " "
                  << harness::Table::fmt(
                         harness::geomean(speedups[i + 1]), 3);
    }
    std::cout << "\n(paper: selective pooling at 32 cycles performs "
                 "best and removes the Figure 18 degradations)\n";
    return 0;
}
