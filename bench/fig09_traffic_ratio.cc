/**
 * @file
 * Figure 9: share of lower-bandwidth-network traffic that is
 * PTW-related versus data. The paper reports PTW traffic averages ~13%
 * — small enough that prioritizing it costs data traffic little
 * (Observation 4).
 *
 * The sweep is defined in src/exp/figures.cc; prefer
 * `netcrafter-sweep fig09`, which shares simulations across figures.
 */

#include "src/exp/figures.hh"

int
main(int argc, char **argv)
{
    return netcrafter::exp::figureMain("fig09", argc, argv);
}
