/**
 * @file
 * Figure 9: share of lower-bandwidth-network traffic that is
 * PTW-related versus data. The paper reports PTW traffic averages ~13%
 * — small enough that prioritizing it costs data traffic little
 * (Observation 4).
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 9",
                  "PTW-related vs data bytes on the inter-cluster "
                  "network (baseline)");

    harness::Table table({"app", "PTW share", "data share"});
    double sum = 0;
    int n = 0;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        if (base.interUsefulBytes == 0) {
            table.addRow({app, "-", "-"});
            continue;
        }
        sum += base.ptwByteFraction;
        ++n;
        table.addRow({app, harness::Table::pct(base.ptwByteFraction),
                      harness::Table::pct(1.0 - base.ptwByteFraction)});
    }
    table.print(std::cout);
    if (n > 0) {
        std::cout << "\nmean PTW share: " << harness::Table::pct(sum / n)
                  << "  (paper: ~13% average)\n";
    }
    return 0;
}
