/**
 * @file
 * Shared helpers for the per-figure bench binaries: the Table 3 app
 * list, the paper's ablation configurations, and small printing
 * utilities. The implementations live in the experiment-orchestration
 * subsystem (src/exp/figures.hh) so declaratively defined sweeps and
 * the remaining hand-rolled binaries agree on the exact same
 * configurations; this header just adapts them to the historical
 * bench:: names.
 */

#ifndef NETCRAFTER_BENCH_BENCH_COMMON_HH
#define NETCRAFTER_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "src/config/system_config.hh"
#include "src/exp/figures.hh"
#include "src/harness/runner.hh"
#include "src/harness/table.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::bench {

using config::SystemConfig;
using harness::RunResult;
using harness::Table;

/** All Table 3 applications in the paper's order. */
inline std::vector<std::string>
apps()
{
    return workloads::workloadNames();
}

/** Baseline + Stitching with Selective Flit Pooling at the sweet spot. */
inline SystemConfig
stitchSelective32()
{
    return exp::stitchSelective32();
}

/** Stitching(+SelPool) + Trimming. */
inline SystemConfig
stitchTrim()
{
    return exp::stitchTrim();
}

/** The full NetCrafter design point (adds Sequencing). */
inline SystemConfig
fullNetcrafter()
{
    return exp::fullNetcrafter();
}

/**
 * CPUs actually usable by this process. hardware_concurrency() reports
 * the machine's core count even when the process is confined to fewer
 * (cgroup cpusets, taskset, CI runners), which would let a bench JSON
 * claim parallel headroom the run never had. Prefer the scheduling
 * affinity mask; fall back to hardware_concurrency(), floor of 1.
 */
inline unsigned
hostCpus()
{
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
        const int count = CPU_COUNT(&mask);
        if (count > 0)
            return static_cast<unsigned>(count);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Loud undersubscription check for sharded bench modes: when the
 * process has fewer usable CPUs than the widest shard count it is
 * about to run, every "parallel" point actually measures
 * synchronization overhead, not speedup. Prints the warning to stderr
 * immediately and returns it so the bench can embed it in the JSON's
 * "notes" field (empty string when the host is wide enough).
 */
inline std::string
undersubscribedNote(const char *bench_name, unsigned max_shards)
{
    const unsigned cpus = hostCpus();
    if (cpus >= max_shards)
        return {};
    std::string note = std::string("WARNING: host_cpus=") +
                       std::to_string(cpus) + " < shards=" +
                       std::to_string(max_shards) +
                       ": sharded points measure synchronization "
                       "overhead, not parallel speedup";
    std::cerr << bench_name << ": " << note << "\n";
    return note;
}

/** Print the standard figure banner. */
inline void
banner(const std::string &fig, const std::string &caption)
{
    exp::banner(std::cout, fig, caption);
}

/** Speedup of @p v over @p base execution cycles. */
inline double
speedup(const RunResult &base, const RunResult &v)
{
    return exp::speedup(base, v);
}

} // namespace netcrafter::bench

#endif // NETCRAFTER_BENCH_BENCH_COMMON_HH
