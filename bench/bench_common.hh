/**
 * @file
 * Shared helpers for the per-figure bench binaries: the Table 3 app
 * list, the paper's ablation configurations, and small printing
 * utilities. Each binary regenerates one table or figure of the paper's
 * evaluation and prints the same rows/series.
 */

#ifndef NETCRAFTER_BENCH_BENCH_COMMON_HH
#define NETCRAFTER_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "src/config/system_config.hh"
#include "src/harness/runner.hh"
#include "src/harness/table.hh"
#include "src/workloads/workload.hh"

namespace netcrafter::bench {

using config::SystemConfig;
using harness::RunResult;
using harness::Table;

/** All Table 3 applications in the paper's order. */
inline std::vector<std::string>
apps()
{
    return workloads::workloadNames();
}

/** Baseline + Stitching with Selective Flit Pooling at the sweet spot. */
inline SystemConfig
stitchSelective32()
{
    return config::stitchingConfig(true, true, 32);
}

/** Stitching(+SelPool) + Trimming. */
inline SystemConfig
stitchTrim()
{
    SystemConfig cfg = stitchSelective32();
    cfg.netcrafter.trimming = true;
    cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
    return cfg;
}

/** The full NetCrafter design point (adds Sequencing). */
inline SystemConfig
fullNetcrafter()
{
    return config::netcrafterConfig();
}

/** Print the standard figure banner. */
inline void
banner(const std::string &fig, const std::string &caption)
{
    std::cout << "==============================================\n"
              << fig << " - " << caption << "\n"
              << "==============================================\n";
}

/** Speedup of @p v over @p base execution cycles. */
inline double
speedup(const RunResult &base, const RunResult &v)
{
    return static_cast<double>(base.cycles) /
           static_cast<double>(v.cycles);
}

} // namespace netcrafter::bench

#endif // NETCRAFTER_BENCH_BENCH_COMMON_HH
