/**
 * @file
 * Figure 20: reduction in network bytes on the lower-bandwidth links
 * with Stitching alone and Stitching + Selective Flit Pooling across
 * 32-128 cycle windows, normalized to the baseline. Savings saturate
 * beyond a 32-cycle window.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 20",
                  "inter-cluster wire bytes, normalized to baseline");

    const std::vector<Tick> windows = {32, 64, 96, 128};
    std::vector<std::string> headers = {"app", "stitch only"};
    for (Tick w : windows)
        headers.push_back("selpool " + std::to_string(w));
    harness::Table table(headers);

    std::vector<double> sums(windows.size() + 1, 0.0);
    int n = 0;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        if (base.interWireBytes == 0) {
            table.addRow({app, "-"});
            continue;
        }
        ++n;
        std::vector<std::string> row{app};

        auto alone =
            harness::runWorkload(app, config::stitchingConfig(false));
        double ratio = static_cast<double>(alone.interWireBytes) /
                       static_cast<double>(base.interWireBytes);
        sums[0] += ratio;
        row.push_back(harness::Table::fmt(ratio, 3));

        for (std::size_t i = 0; i < windows.size(); ++i) {
            auto pooled = harness::runWorkload(
                app, config::stitchingConfig(true, true, windows[i]));
            ratio = static_cast<double>(pooled.interWireBytes) /
                    static_cast<double>(base.interWireBytes);
            sums[i + 1] += ratio;
            row.push_back(harness::Table::fmt(ratio, 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    if (n > 0) {
        std::cout << "\nmean byte ratio: stitch-only "
                  << harness::Table::fmt(sums[0] / n, 3);
        for (std::size_t i = 0; i < windows.size(); ++i) {
            std::cout << ", selpool-" << windows[i] << " "
                      << harness::Table::fmt(sums[i + 1] / n, 3);
        }
        std::cout << "\n(paper: pooling deepens savings; the curve "
                     "flattens past a 32-cycle window)\n";
    }
    return 0;
}
