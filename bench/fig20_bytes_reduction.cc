/**
 * @file
 * Figure 20: reduction in network bytes on the lower-bandwidth links
 * with Stitching alone and Stitching + Selective Flit Pooling across
 * 32-128 cycle windows, normalized to the baseline. Savings saturate
 * beyond a 32-cycle window.
 *
 * The sweep is defined in src/exp/figures.cc; prefer
 * `netcrafter-sweep fig20`, which shares simulations across figures.
 */

#include "src/exp/figures.hh"

int
main(int argc, char **argv)
{
    return netcrafter::exp::figureMain("fig20", argc, argv);
}
