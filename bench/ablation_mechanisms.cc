/**
 * @file
 * Ablation study of NetCrafter's design choices beyond the paper's own
 * sweeps: each mechanism alone, pairs, the full stack, and the two
 * implementation-level choices this reproduction documents in DESIGN.md
 * (work-conserving pooling via soft timers, candidate search depth).
 * Run on a representative subset so the binary stays quick.
 */

#include <iostream>

#include "bench/bench_common.hh"

namespace {

using namespace netcrafter;

config::SystemConfig
stitchOnly()
{
    return config::stitchingConfig(false);
}

config::SystemConfig
trimOnly()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.netcrafter.trimming = true;
    cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
    return cfg;
}

config::SystemConfig
seqOnly()
{
    config::SystemConfig cfg = config::baselineConfig();
    cfg.netcrafter.sequencing = config::SequencingMode::PrioritizePtw;
    return cfg;
}

config::SystemConfig
trimPlusSeq()
{
    config::SystemConfig cfg = trimOnly();
    cfg.netcrafter.sequencing = config::SequencingMode::PrioritizePtw;
    return cfg;
}

config::SystemConfig
shallowSearch()
{
    config::SystemConfig cfg = config::netcrafterConfig();
    cfg.netcrafter.stitchSearchDepth = 4;
    return cfg;
}

config::SystemConfig
smallClusterQueue()
{
    config::SystemConfig cfg = config::netcrafterConfig();
    cfg.netcrafter.clusterQueueEntries = 128;
    return cfg;
}

} // namespace

int
main()
{
    using namespace netcrafter;
    bench::banner("Ablation",
                  "mechanism combinations and implementation knobs");

    const std::vector<std::string> apps = {"GUPS", "MT", "SPMV",
                                           "SYR2K", "VGG16"};
    struct Point
    {
        const char *label;
        config::SystemConfig cfg;
    };
    const std::vector<Point> points = {
        {"stitch", stitchOnly()},
        {"trim", trimOnly()},
        {"seq", seqOnly()},
        {"trim+seq", trimPlusSeq()},
        {"full", config::netcrafterConfig()},
        {"full,depth4", shallowSearch()},
        {"full,CQ128", smallClusterQueue()},
    };

    std::vector<std::string> headers = {"app"};
    for (const auto &p : points)
        headers.push_back(p.label);
    harness::Table table(headers);

    std::vector<std::vector<double>> speedups(points.size());
    for (const auto &app : apps) {
        auto base = harness::runWorkload(app, config::baselineConfig());
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < points.size(); ++i) {
            auto r = harness::runWorkload(app, points[i].cfg);
            speedups[i].push_back(bench::speedup(base, r));
            row.push_back(harness::Table::fmt(speedups[i].back(), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\ngeomean:";
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::cout << "  " << points[i].label << " "
                  << harness::Table::fmt(
                         harness::geomean(speedups[i]), 3);
    }
    std::cout << "\nNotes: trimming dominates for <=16B apps; "
                 "sequencing composes with it; a shallow candidate "
                 "search or a small Cluster Queue erodes stitching.\n";
    return 0;
}
