/**
 * @file
 * Figure 4: utilization of the inter-GPU-cluster network under the
 * non-uniform baseline versus the ideal configuration. High utilization
 * on the lower-bandwidth links signals congestion.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 4",
                  "inter-cluster network utilization, baseline vs ideal");

    harness::Table table({"app", "non-uniform util", "ideal util"});
    double sum_base = 0, sum_ideal = 0;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        auto ideal = harness::runWorkload(app, config::idealConfig());
        sum_base += base.interUtilization;
        sum_ideal += ideal.interUtilization;
        table.addRow({app, harness::Table::pct(base.interUtilization),
                      harness::Table::pct(ideal.interUtilization)});
    }
    table.print(std::cout);
    const double n = static_cast<double>(bench::apps().size());
    std::cout << "\nmean utilization: non-uniform "
              << harness::Table::pct(sum_base / n) << ", ideal "
              << harness::Table::pct(sum_ideal / n)
              << "  (paper: high on lower-bandwidth links, low when "
                 "bandwidth is plentiful)\n";
    return 0;
}
