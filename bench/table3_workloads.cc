/**
 * @file
 * Table 3: the evaluated applications and their access patterns, as
 * registered in the workload registry.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Table 3", "evaluated applications");

    harness::Table table({"Abbr.", "Access Pattern", "Kernels"});
    for (const auto &name : bench::apps()) {
        auto wl = workloads::makeWorkload(name);
        workloads::BuildContext ctx;
        struct NullPlacement : workloads::PlacementDirectory
        {
            void place(Addr, GpuId) override {}
        } placement;
        ctx.placement = &placement;
        wl->build(ctx);
        table.addRow({wl->name(), wl->pattern(),
                      std::to_string(wl->kernels().size())});
    }
    table.print(std::cout);
    return 0;
}
