/**
 * @file
 * Figure 21: Stitching + Selective Flit Pooling with 8-byte versus
 * 16-byte flits. Smaller flits leave less padding to reclaim, so
 * stitching's benefit shrinks but remains positive.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 21",
                  "Stitching + Selective Flit Pooling: 8B vs 16B flits");

    harness::Table table({"app", "16B flits", "8B flits"});
    std::vector<double> s16, s8;

    for (const auto &app : bench::apps()) {
        // Each flit size gets its own baseline: flit size changes the
        // baseline too (segmentation differs).
        config::SystemConfig base16 = config::baselineConfig();
        config::SystemConfig base8 = config::baselineConfig();
        base8.flitBytes = 8;

        config::SystemConfig nc16 = bench::stitchSelective32();
        config::SystemConfig nc8 = bench::stitchSelective32();
        nc8.flitBytes = 8;

        auto b16 = harness::runWorkload(app, base16);
        auto v16 = harness::runWorkload(app, nc16);
        auto b8 = harness::runWorkload(app, base8);
        auto v8 = harness::runWorkload(app, nc8);

        s16.push_back(bench::speedup(b16, v16));
        s8.push_back(bench::speedup(b8, v8));
        table.addRow({app, harness::Table::fmt(s16.back(), 3),
                      harness::Table::fmt(s8.back(), 3)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean: 16B "
              << harness::Table::fmt(harness::geomean(s16), 3)
              << "x, 8B "
              << harness::Table::fmt(harness::geomean(s8), 3)
              << "x  (paper: smaller flits shrink but do not erase the "
                 "benefit)\n";
    return 0;
}
