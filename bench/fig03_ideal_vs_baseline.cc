/**
 * @file
 * Figure 3: performance of the non-uniform multi-GPU system compared to
 * an ideal setup in which every link runs at the high (intra-cluster)
 * bandwidth. The paper reports an average ~1.5x ideal speedup,
 * establishing the inter-cluster network as the bottleneck.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 3",
                  "ideal (all-high-bandwidth) speedup over baseline");

    harness::Table table(
        {"app", "baseline cycles", "ideal cycles", "ideal speedup"});
    std::vector<double> speedups;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        auto ideal = harness::runWorkload(app, config::idealConfig());
        const double s = bench::speedup(base, ideal);
        speedups.push_back(s);
        table.addRow({app, std::to_string(base.cycles),
                      std::to_string(ideal.cycles),
                      harness::Table::fmt(s)});
    }
    table.print(std::cout);
    std::cout << "\ngeomean ideal speedup: "
              << harness::Table::fmt(harness::geomean(speedups))
              << "x   (paper: ~1.5x average)\n";
    return 0;
}
