/**
 * @file
 * Figure 3: performance of the non-uniform multi-GPU system compared to
 * an ideal setup in which every link runs at the high (intra-cluster)
 * bandwidth. The paper reports an average ~1.5x ideal speedup,
 * establishing the inter-cluster network as the bottleneck.
 *
 * The sweep itself is defined declaratively in src/exp/figures.cc; this
 * binary remains for workflows that regenerate one figure at a time.
 * Prefer `netcrafter-sweep fig03` (or `all`), which shares simulations
 * across figures through the result cache.
 */

#include "src/exp/figures.hh"

int
main(int argc, char **argv)
{
    return netcrafter::exp::figureMain("fig03", argc, argv);
}
