/**
 * @file
 * Figure 14 (headline): overall performance of NetCrafter's cumulative
 * mechanisms — Stitching (with Selective Flit Pooling @32), + Trimming,
 * + Sequencing (the full design) — plus the 16B L1 sector-cache
 * baseline, all normalized to the non-uniform baseline. The paper
 * reports up to 64% and on average 16% speedup for full NetCrafter.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 14",
                  "speedup over the non-uniform baseline (cumulative "
                  "mechanisms)");

    harness::Table table({"app", "Stitching", "+Trimming",
                          "+Sequencing (NetCrafter)", "SectorCache16B"});
    std::vector<double> s1, s2, s3, s4;

    for (const auto &app : bench::apps()) {
        auto base =
            harness::runWorkload(app, config::baselineConfig());
        auto stitch = harness::runWorkload(app, bench::stitchSelective32());
        auto trim = harness::runWorkload(app, bench::stitchTrim());
        auto full = harness::runWorkload(app, bench::fullNetcrafter());
        auto sector =
            harness::runWorkload(app, config::sectorCacheConfig(16));

        s1.push_back(bench::speedup(base, stitch));
        s2.push_back(bench::speedup(base, trim));
        s3.push_back(bench::speedup(base, full));
        s4.push_back(bench::speedup(base, sector));
        table.addRow({app, harness::Table::fmt(s1.back()),
                      harness::Table::fmt(s2.back()),
                      harness::Table::fmt(s3.back()),
                      harness::Table::fmt(s4.back())});
    }
    table.print(std::cout);
    std::cout << "\ngeomean speedup: stitching "
              << harness::Table::fmt(harness::geomean(s1))
              << "x, +trimming "
              << harness::Table::fmt(harness::geomean(s2))
              << "x, full NetCrafter "
              << harness::Table::fmt(harness::geomean(s3))
              << "x, sector-cache "
              << harness::Table::fmt(harness::geomean(s4)) << "x\n"
              << "(paper: full NetCrafter up to 1.64x, avg 1.16x; "
                 "sector cache helps <=16B apps, hurts coarse-grained "
                 "ones)\n";
    return 0;
}
