/**
 * @file
 * Figure 14 (headline): overall performance of NetCrafter's cumulative
 * mechanisms — Stitching (with Selective Flit Pooling @32), + Trimming,
 * + Sequencing (the full design) — plus the 16B L1 sector-cache
 * baseline, all normalized to the non-uniform baseline. The paper
 * reports up to 64% and on average 16% speedup for full NetCrafter.
 *
 * The sweep is defined in src/exp/figures.cc; prefer
 * `netcrafter-sweep fig14`, which shares simulations across figures.
 */

#include "src/exp/figures.hh"

int
main(int argc, char **argv)
{
    return netcrafter::exp::figureMain("fig14", argc, argv);
}
