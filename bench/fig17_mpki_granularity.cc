/**
 * @file
 * Figure 17: L1 MPKI on large GEMM kernels as a function of trimming /
 * sector granularity (4, 8, 16 bytes), comparing NetCrafter's selective
 * Trimming against the all-trimming (sector-everywhere) approach.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace netcrafter;
    bench::banner("Figure 17",
                  "GEMM L1 MPKI vs trim/sector granularity");

    harness::Table table({"granularity", "Trimming (NetCrafter)",
                          "All-trimming (sector cache)"});

    auto base = harness::runWorkload("GEMM", config::baselineConfig());

    for (std::uint32_t g : {4u, 8u, 16u}) {
        config::SystemConfig trim_cfg = config::baselineConfig();
        trim_cfg.netcrafter.trimming = true;
        trim_cfg.netcrafter.trimGranularity = g;
        trim_cfg.l1FillMode = config::L1FillMode::TrimInterCluster;
        auto trim = harness::runWorkload("GEMM", trim_cfg);

        auto sector =
            harness::runWorkload("GEMM", config::sectorCacheConfig(g));

        table.addRow({std::to_string(g) + "B",
                      harness::Table::fmt(trim.l1Mpki, 1),
                      harness::Table::fmt(sector.l1Mpki, 1)});
    }
    table.print(std::cout);
    std::cout << "\nbaseline (full-line) MPKI: "
              << harness::Table::fmt(base.l1Mpki, 1)
              << "\n(paper: Trimming's MPKI stays below all-trimming at "
                 "every granularity; both rise as sectors shrink)\n";
    return 0;
}
